package testkit

import (
	"testing"

	"repro/internal/core"
	"repro/internal/edcs"
	"repro/internal/gen"
	"repro/internal/matching"
	"repro/internal/params"
)

// TestBackendConformance holds every registered sparsifier backend to its
// own contract on the certified families: subgraph containment for both,
// the Observation 2.10/2.12 bounds plus the Theorem 2.1 ratio for G_Δ, and
// the P1/P2 degree invariants plus the 3/2+O(λ) ratio for EDCS. The ratio
// checks aggregate over seeds with one allowed miss (G_Δ's guarantee is
// only w.h.p.; EDCS's is deterministic but shares the tally plumbing).
func TestBackendConformance(t *testing.T) {
	const eps = 0.3
	n, seeds := conformanceScale(t)
	for _, fam := range ConformanceFamilies(192) {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			t.Parallel()
			backends := core.Backends(1)
			ratio := make(map[string]*Tally, len(backends))
			for _, b := range backends {
				ratio[b.Name()] = &Tally{}
			}
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				inst := fam.Make(n, 3000+seed)
				for _, backend := range backends {
					sp := backend.Sparsify(inst.G, inst.Beta, eps, 9900+seed)
					if sp.M() > backend.SizeUpperBound(inst.G.N(), inst.MCM, inst.Beta, eps) {
						t.Errorf("%s seed %d: %d edges exceed the backend's own size bound %d",
							backend.Name(), seed, sp.M(),
							backend.SizeUpperBound(inst.G.N(), inst.MCM, inst.Beta, eps))
					}
					switch backend.Name() {
					case "gdelta":
						delta := params.Delta(inst.Beta, eps)
						if err := CheckSparsifierConformance(inst, sp, params.MarkAllThreshold(delta)); err != nil {
							t.Errorf("gdelta seed %d: %v", seed, err)
						}
						ratio["gdelta"].Observe(CheckSparsifierRatio(inst, sp, eps))
					case "edcs":
						lambda := params.EDCSLambda(eps)
						if err := CheckSubgraph(inst.G, sp); err != nil {
							t.Errorf("edcs seed %d: %v", seed, err)
						}
						if err := edcs.CheckInvariants(inst.G, sp, params.EDCSBeta(eps), lambda); err != nil {
							t.Errorf("edcs seed %d: %v", seed, err)
						}
						got := matching.MaximumGeneral(sp).Size()
						// EDCS on an arbitrary graph: MCM(H) ≥ MCM(G)/(3/2+ε).
						if floor := int(float64(inst.MCM) / (1.5 + eps)); got < floor {
							t.Errorf("edcs seed %d: MCM %d below the 3/2+O(λ) floor %d (MCM=%d)",
								seed, got, floor, inst.MCM)
						}
						ratio["edcs"].Observe(nil)
					default:
						t.Fatalf("unknown backend %q in registry", backend.Name())
					}
				}
			}
			for name, tally := range ratio {
				if err := tally.Judge(1); err != nil {
					t.Errorf("%s: ratio: %v", name, err)
				}
			}
		})
	}
}

// TestBackendDeterminism pins the worker-invariance contract of the
// Sparsifier interface: for each backend, every worker count and every
// re-run must reproduce the construction bit for bit.
func TestBackendDeterminism(t *testing.T) {
	const eps = 0.3
	inst := Certify(gen.BoundedDiversityInstance(160, 3, 96, 11))
	for _, name := range core.BackendNames() {
		base, err := core.BackendByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := base.Sparsify(inst.G, inst.Beta, eps, 42)
		for _, w := range []int{0, 1, 2, 8} {
			backend, err := core.BackendByName(name, w)
			if err != nil {
				t.Fatal(err)
			}
			for run := 0; run < 2; run++ {
				got := backend.Sparsify(inst.G, inst.Beta, eps, 42)
				if err := CheckSameGraph(want, got); err != nil {
					t.Errorf("%s workers=%d run=%d: %v", name, w, run, err)
				}
			}
		}
	}
}

// TestBackendDifferentialUnboundedBeta is the differential acceptance test
// of the backend split: on a certified unbounded-β instance (the
// hidden-matching construction, β ≥ pairs, witnessed by an explicit
// independent neighborhood), G_Δ run with the caller's assumed β=1 loses
// the Theorem 2.1 guarantee — its ratio degrades past 1+ε — while EDCS
// holds its arbitrary-graph 3/2+O(λ) bound on the same input. The sizing
// deliberately puts the decoy degree above G_Δ's mark-all threshold
// 2·Δ(1, ε) = 30, since below it the low-degree tweak keeps every edge and
// masks the degradation.
func TestBackendDifferentialUnboundedBeta(t *testing.T) {
	const eps = 0.3
	const pairs, decoys = 360, 72
	hm := gen.HiddenMatchingInstance(pairs, decoys)
	if err := hm.VerifyWitness(); err != nil {
		t.Fatalf("witness: %v", err)
	}
	if lb := hm.BetaLowerBound(); lb < pairs {
		t.Fatalf("beta lower bound %d < pairs %d", lb, pairs)
	}
	exact := gen.HiddenMatchingMCM(pairs, decoys)

	ratios := map[string]float64{}
	for _, backend := range core.Backends(1) {
		h := backend.Sparsify(hm.G, 1, eps, 607)
		got := matching.MaximumGeneral(h).Size()
		if got == 0 {
			t.Fatalf("%s: empty matching on hidden-matching instance", backend.Name())
		}
		ratios[backend.Name()] = float64(exact) / float64(got)
	}
	t.Logf("MCM=%d, ratios: %v", exact, ratios)

	// G_Δ must demonstrably violate its bounded-β guarantee here: the
	// measured ratio (1.6 at this size and seed; grows with pairs/decoys)
	// sits clearly above the 1+ε = 1.3 it certifies on bounded β.
	if ratios["gdelta"] <= 1+eps {
		t.Errorf("gdelta ratio %.3f does not degrade past 1+ε = %.1f — instance too easy", ratios["gdelta"], 1+eps)
	}
	// EDCS must hold its arbitrary-graph guarantee on the same input.
	if ratios["edcs"] > 1.5+eps {
		t.Errorf("edcs ratio %.3f exceeds the 3/2+O(λ) bound %.1f", ratios["edcs"], 1.5+eps)
	}
	// And the separation itself: EDCS strictly better than G_Δ.
	if ratios["edcs"] >= ratios["gdelta"] {
		t.Errorf("no separation: edcs %.3f vs gdelta %.3f", ratios["edcs"], ratios["gdelta"])
	}
}
