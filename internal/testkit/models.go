package testkit

import (
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dyndist"
	"repro/internal/dynmatch"
	"repro/internal/graph"
	"repro/internal/mpc"
	"repro/internal/stream"
)

// SparsifierModel is one execution model's sparsifier construction with the
// uniform (graph, Δ, seed) interface of the differential driver. MarkCap
// declares the model's effective per-vertex mark cap Δ' — the quantity the
// deterministic Observation 2.10/2.12 checkers bound the output with.
type SparsifierModel struct {
	Name string
	// MarkCap returns Δ' for a given Δ: Δ for the pure reservoir models
	// (streaming, MPC), 2Δ for the models with the Section 3.1 mark-all
	// tweak (sequential, distributed, dynamic-distributed).
	MarkCap func(delta int) int
	// Build constructs the model's sparsifier of g. Re-invoking with the
	// same arguments must reproduce the output bit-for-bit (the
	// determinism contract checked by CheckSameGraph).
	Build func(g *graph.Static, delta int, seed uint64) *graph.Static
}

func capDelta(delta int) int  { return delta }
func capDouble(delta int) int { return 2 * delta }

// SparsifierModels returns the differential catalog: every execution model
// that materializes G_Δ, so a conformance suite can run them all on the
// same certified instance and hold each output to the same theorem
// checkers.
func SparsifierModels() []SparsifierModel {
	return []SparsifierModel{
		{
			Name:    "sequential",
			MarkCap: capDouble,
			Build: func(g *graph.Static, delta int, seed uint64) *graph.Static {
				return core.SparsifyOpts(g, core.Options{Delta: delta, Workers: 1}, seed)
			},
		},
		{
			Name:    "distributed",
			MarkCap: capDouble,
			Build: func(g *graph.Static, delta int, seed uint64) *graph.Static {
				sp, _ := dist.RunSparsifier(g, delta, seed)
				return sp
			},
		},
		{
			Name:    "streaming",
			MarkCap: capDelta,
			Build: func(g *graph.Static, delta int, seed uint64) *graph.Static {
				sp, _ := stream.SparsifyStream(g, delta, nil, seed)
				return sp
			},
		},
		{
			Name:    "mpc",
			MarkCap: capDelta,
			Build: func(g *graph.Static, delta int, seed uint64) *graph.Static {
				sp, _ := mpc.SparsifyMPC(g, delta, 8, seed)
				return sp
			},
		},
		{
			Name:    "dyndist",
			MarkCap: capDouble,
			Build: func(g *graph.Static, delta int, seed uint64) *graph.Static {
				return ReplayDynDist(g, delta, seed).Sparsifier()
			},
		},
	}
}

// ReplayDynDist replays the edges of g as insertions into a dynamic
// distributed network (canonical edge order, so the replay is
// deterministic for a fixed seed) and returns the network for inspection.
func ReplayDynDist(g *graph.Static, delta int, seed uint64) *dyndist.Network {
	nw := dyndist.NewNetwork(g.N(), delta, seed)
	g.ForEachEdge(func(u, v int32) { nw.Insert(u, v) })
	return nw
}

// ReplayDynamicMatcher replays the edges of g as insertions into a fully
// dynamic maintainer, forces the pending recomputation to complete, and
// returns the maintainer. The output matching is then (1+O(ε))-approximate
// w.h.p. — the Theorem 3.5 end state the conformance suite checks with
// CheckMatchingValid plus a Tally over the ratio.
func ReplayDynamicMatcher(g *graph.Static, beta int, eps float64, seed uint64) *dynmatch.Maintainer {
	mt := dynmatch.New(g.N(), dynmatch.Options{Beta: beta, Eps: eps}, seed)
	g.ForEachEdge(func(u, v int32) { mt.Insert(u, v) })
	mt.ForceRecompute()
	return mt
}

// CheckSparsifierConformance runs every deterministic checker on one
// model's output: subgraph containment, the Observation 2.10 edge bound,
// and the Observation 2.12 arboricity bound. The probabilistic Theorem 2.1
// ratio is intentionally excluded — aggregate it separately with a Tally.
func CheckSparsifierConformance(inst Instance, sp *graph.Static, markCap int) error {
	var errs Errs
	errs.Add(CheckSubgraph(inst.G, sp))
	errs.Add(CheckEdgeBound(inst, sp, markCap))
	errs.Add(CheckArboricity(inst, sp, markCap))
	return errs.Err()
}
