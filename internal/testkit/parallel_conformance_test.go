package testkit

import (
	"testing"

	"repro/internal/core"
	"repro/internal/matching"
	"repro/internal/params"
)

// TestParallelPhaseEngineConformance holds the parallel phase engine to its
// determinism contract on the certified conformance families: for workers ∈
// {1, 2, 8}, the engine's full phase schedule on the sparsifier must produce
// a matching that is bit-identical (mate-for-mate) to the sequential
// package-level DisjointAugment schedule, valid on the graph, and hence of
// identical size. Per-phase augmentation counts are checked too, so a
// divergence is pinned to the phase where it first appears.
func TestParallelPhaseEngineConformance(t *testing.T) {
	const eps = 0.3
	n, seeds := conformanceScale(t)
	workerCounts := []int{1, 2, 8}
	for _, fam := range ConformanceFamilies(192) {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			t.Parallel()
			maxLen := params.AugLen(eps)
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				inst := fam.Make(n, 3300+seed)
				delta := params.Delta(inst.Beta, eps)
				sp := core.Sparsify(inst.G, delta, 8800+seed)

				// Sequential reference: greedy + package-level disjoint
				// phases run to fixpoint at every odd length bound.
				ref := matching.GreedyShuffled(sp, 5500+seed)
				var refPhases []int
				for L := 1; L <= maxLen; L += 2 {
					for {
						k := matching.DisjointAugment(sp, ref, L)
						refPhases = append(refPhases, k)
						if k == 0 {
							break
						}
					}
				}
				refMates := ref.MatesInto(nil)

				for _, w := range workerCounts {
					e := matching.NewEngine(matching.Options{Workers: w})
					m := matching.NewMatching(sp.N())
					e.GreedyShuffledInto(sp, m, 5500+seed)
					var phases []int
					for L := 1; L <= maxLen; L += 2 {
						for {
							k := e.DisjointAugment(sp, m, L)
							phases = append(phases, k)
							if k == 0 {
								break
							}
						}
					}
					if err := matching.Verify(sp, m); err != nil {
						t.Errorf("%s seed %d workers %d: invalid matching: %v", fam.Name, seed, w, err)
					}
					if m.Size() != ref.Size() {
						t.Errorf("%s seed %d workers %d: size %d != sequential %d",
							fam.Name, seed, w, m.Size(), ref.Size())
					}
					if len(phases) != len(refPhases) {
						t.Errorf("%s seed %d workers %d: %d phases != sequential %d",
							fam.Name, seed, w, len(phases), len(refPhases))
					} else {
						for i := range phases {
							if phases[i] != refPhases[i] {
								t.Errorf("%s seed %d workers %d: phase %d augmented %d paths, sequential %d",
									fam.Name, seed, w, i, phases[i], refPhases[i])
								break
							}
						}
					}
					mates := m.MatesInto(nil)
					for v := range mates {
						if mates[v] != refMates[v] {
							t.Errorf("%s seed %d workers %d: mate[%d] = %d, sequential %d (matching not bit-identical)",
								fam.Name, seed, w, v, mates[v], refMates[v])
							break
						}
					}
					e.Close()
				}
			}
		})
	}
}
