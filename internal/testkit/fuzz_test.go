package testkit

import (
	"testing"

	"repro/internal/arcs"
	"repro/internal/dyndist"
	"repro/internal/dynmatch"
	"repro/internal/graph"
	"repro/internal/matching"
)

// The dynamic-model fuzz oracles decode arbitrary bytes into edge-update
// sequences and differentially compare the incremental structures against a
// from-scratch rebuild: the maintained graph must equal the graph rebuilt
// from the surviving edge set, and the maintained auxiliary state
// (sparsifier, matching) must satisfy its structural invariants after every
// prefix. Ops are 2 bytes each: the first selects insert/delete and one
// endpoint, the second the other endpoint.

// oracleOps decodes data into (insert, u, v) ops over n vertices.
func oracleOps(data []byte, n int32) []struct {
	insert bool
	u, v   int32
} {
	ops := make([]struct {
		insert bool
		u, v   int32
	}, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		ops = append(ops, struct {
			insert bool
			u, v   int32
		}{
			insert: data[i]&1 == 0,
			u:      int32(data[i]>>1) % n,
			v:      int32(data[i+1]) % n,
		})
	}
	return ops
}

// rebuildOracle converts the surviving edge set into a Static graph.
func rebuildOracle(n int32, live map[uint64]bool) *graph.Static {
	b := graph.NewBuilder(int(n))
	for k := range live {
		b.AddPacked(k)
	}
	return b.Build()
}

// FuzzDynDistOracle drives the dynamic distributed network with arbitrary
// update sequences and cross-checks it against the rebuild oracle: update
// return values, the full structural invariant (marks ⊆ live edges,
// sparsifier/mark-count consistency, matching ⊆ sparsifier + maximality),
// and final-graph equality.
func FuzzDynDistOracle(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x01, 0x01}, uint64(1))
	f.Add([]byte{0x00, 0x01, 0x00, 0x01, 0x01, 0x01, 0x00, 0x01}, uint64(7))
	f.Add([]byte{0x10, 0x0b, 0x14, 0x02, 0x11, 0x0b, 0x06, 0x07}, uint64(42))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		const n = 12
		nw := dyndist.NewNetwork(n, 1+int(seed%4), seed)
		live := make(map[uint64]bool)
		for i, op := range oracleOps(data, n) {
			if op.u == op.v {
				continue
			}
			k := arcs.Pack(op.u, op.v)
			if op.insert {
				if got, want := nw.Insert(op.u, op.v), !live[k]; got != want {
					t.Fatalf("op %d: Insert(%d,%d) = %v, oracle says %v", i, op.u, op.v, got, want)
				}
				live[k] = true
			} else {
				if got, want := nw.Delete(op.u, op.v), live[k]; got != want {
					t.Fatalf("op %d: Delete(%d,%d) = %v, oracle says %v", i, op.u, op.v, got, want)
				}
				delete(live, k)
			}
			if i%16 == 15 {
				if err := nw.Validate(); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
		}
		if err := nw.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := CheckSameGraph(rebuildOracle(n, live), nw.Graph().Snapshot()); err != nil {
			t.Fatalf("maintained graph diverged from rebuild oracle: %v", err)
		}
		if err := CheckSubgraph(nw.Graph().Snapshot(), nw.Sparsifier()); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzDynMatchOracle drives the fully dynamic maintainer with arbitrary
// update sequences. The graph is kept below the mark-all threshold (n = 16,
// Δ ≥ 8 ⇒ every run samples the whole graph), so after two forced
// recomputations — the second guarantees a complete run over the final
// graph — the output must be a valid MAXIMAL matching of the final graph,
// hence at least half the exact MCM computed by the blossom oracle.
func FuzzDynMatchOracle(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05}, uint64(3))
	f.Add([]byte{0x00, 0x0f, 0x01, 0x0f, 0x00, 0x02, 0x06, 0x09}, uint64(11))
	f.Add([]byte{0x20, 0x01, 0x22, 0x03, 0x21, 0x01, 0x08, 0x0d}, uint64(99))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		const n = 16
		mt := dynmatch.New(n, dynmatch.Options{Beta: 2, Eps: 0.5}, seed)
		live := make(map[uint64]bool)
		for i, op := range oracleOps(data, n) {
			if op.u == op.v {
				continue
			}
			k := arcs.Pack(op.u, op.v)
			if op.insert {
				if got, want := mt.Insert(op.u, op.v), !live[k]; got != want {
					t.Fatalf("op %d: Insert(%d,%d) = %v, oracle says %v", i, op.u, op.v, got, want)
				}
				live[k] = true
			} else {
				if got, want := mt.Delete(op.u, op.v), live[k]; got != want {
					t.Fatalf("op %d: Delete(%d,%d) = %v, oracle says %v", i, op.u, op.v, got, want)
				}
				delete(live, k)
			}
			if i%16 == 15 {
				if err := mt.Validate(); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
		}
		final := rebuildOracle(n, live)
		if err := CheckSameGraph(final, mt.Graph().Snapshot()); err != nil {
			t.Fatalf("maintained graph diverged from rebuild oracle: %v", err)
		}
		mt.ForceRecompute()
		mt.ForceRecompute()
		m := mt.Matching()
		if err := CheckMatchingValid(final, m); err != nil {
			t.Fatal(err)
		}
		if !matching.IsMaximal(final, m) {
			t.Fatalf("matching of size %d not maximal after full recompute", m.Size())
		}
		if mcm := matching.MaximumGeneral(final).Size(); 2*m.Size() < mcm {
			t.Fatalf("maximal matching %d below MCM/2 (MCM=%d)", m.Size(), mcm)
		}
	})
}
