package testkit

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/params"
)

// Conformance scale: full runs use 5 seeds on ~240-vertex instances; -short
// (and the CI race job's slower execution) still covers every family/model
// pair, with fewer seeds.
func conformanceScale(t *testing.T) (n, seeds int) {
	if testing.Short() {
		return 140, 2
	}
	return 240, 5
}

// TestCrossModelConformance is the differential driver: every execution
// model that materializes G_Δ runs on the same certified instances (3
// families × several seeds), and every output is held to the same
// checkers — subgraph containment, the Observation 2.10 edge bound, and
// the Observation 2.12 arboricity bound per run (deterministic, zero
// tolerance), and the Theorem 2.1 ratio aggregated over seeds with one
// allowed miss per (family, model) pair (the guarantee is only w.h.p.).
// Lemma 2.2 and the β certificate are checked once per instance.
func TestCrossModelConformance(t *testing.T) {
	const eps = 0.3
	n, seeds := conformanceScale(t)
	for _, fam := range ConformanceFamilies(192) {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			t.Parallel()
			models := SparsifierModels()
			ratio := make(map[string]*Tally, len(models))
			for _, m := range models {
				ratio[m.Name] = &Tally{}
			}
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				inst := fam.Make(n, 1000+seed)
				if inst.MCM == 0 {
					t.Fatalf("seed %d: degenerate instance with empty matching", seed)
				}
				if err := CheckLowerBound(inst); err != nil {
					t.Error(err)
				}
				if err := CheckBetaCertificate(inst); err != nil {
					t.Error(err)
				}
				delta := params.Delta(inst.Beta, eps)
				for _, model := range models {
					sp := model.Build(inst.G, delta, 7700+seed)
					if err := CheckSparsifierConformance(inst, sp, model.MarkCap(delta)); err != nil {
						t.Errorf("%s seed %d: %v", model.Name, seed, err)
					}
					ratio[model.Name].Observe(CheckSparsifierRatio(inst, sp, eps))
				}
			}
			for name, tally := range ratio {
				if err := tally.Judge(1); err != nil {
					t.Errorf("%s: Theorem 2.1 ratio: %v", name, err)
				}
			}
		})
	}
}

// TestDynamicMatcherConformance replays each certified instance into the
// fully dynamic maintainer (Theorem 3.5) and checks the end state: a valid
// matching of the final graph whose size is within (1+ε) of the exact MCM,
// with the transient-window slack of the maintainer's own calibration and
// one allowed miss per family over the seeds.
func TestDynamicMatcherConformance(t *testing.T) {
	const eps = 0.3
	// Replaying m edges costs m · O(Δ/ε²) budgeted units by design
	// (Theorem 3.5's per-update budget), so the matcher conformance runs on
	// small sparse instances; the sparsifier models cover the dense regime.
	_, seeds := conformanceScale(t)
	n := 100
	if testing.Short() {
		n = 64
	}
	for _, fam := range ConformanceFamilies(32) {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			t.Parallel()
			tally := &Tally{}
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				inst := fam.Make(n, 2000+seed)
				mt := ReplayDynamicMatcher(inst.G, inst.Beta, eps, 8800+seed)
				if err := mt.Validate(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := CheckMatchingValid(inst.G, mt.Matching()); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				// ε plus 0.1 transient slack, matching the maintainer's own
				// quality tests (dynmatch: 1.3 at ε=0.25).
				var miss error
				if got, floor := mt.Size(), RatioFloor(inst.MCM, eps+0.1); got < floor {
					miss = fmt.Errorf("%s seed %d: maintained matching %d below floor %d (MCM=%d)",
						inst.Name, seed, got, floor, inst.MCM)
				}
				tally.Observe(miss)
			}
			if err := tally.Judge(1); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDynDistMaintainedState replays instances into the dynamic distributed
// network and checks the maintained state end-to-end: internal invariants
// (Validate), the sparsifier bound checkers, and that the maintained
// matching is a valid matching of both the sparsifier and the input graph.
func TestDynDistMaintainedState(t *testing.T) {
	const eps = 0.3
	n, seeds := conformanceScale(t)
	n /= 2 // the per-update replay is the slow path; half size keeps it quick
	for _, fam := range ConformanceFamilies(96) {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= uint64(seeds); seed++ {
				inst := fam.Make(n, 3000+seed)
				delta := params.Delta(inst.Beta, eps)
				nw := ReplayDynDist(inst.G, delta, 9900+seed)
				if err := nw.Validate(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				sp := nw.Sparsifier()
				if err := CheckSparsifierConformance(inst, sp, 2*delta); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
				m := nw.Matching()
				if err := CheckMatchingValid(sp, m); err != nil {
					t.Errorf("seed %d: matching vs sparsifier: %v", seed, err)
				}
				if err := CheckMatchingValid(inst.G, m); err != nil {
					t.Errorf("seed %d: matching vs input: %v", seed, err)
				}
			}
		})
	}
}

// TestModelDeterminism re-runs every model with identical arguments and
// demands bit-for-bit identical sparsifiers — the reproducibility contract
// every experiment and regression test in the repository leans on.
func TestModelDeterminism(t *testing.T) {
	n, _ := conformanceScale(t)
	inst := ConformanceFamilies(96)[1].Make(n, 42) // diversity4
	delta := params.Delta(inst.Beta, 0.3)
	for _, model := range SparsifierModels() {
		a := model.Build(inst.G, delta, 5)
		b := model.Build(inst.G, delta, 5)
		if err := CheckSameGraph(a, b); err != nil {
			t.Errorf("%s: same-seed rebuild differs: %v", model.Name, err)
		}
	}
}

// TestWorkerDeterminismAndConformance pins the sequential model's
// Workers-sharding contract: for a fixed seed the output is deterministic
// AND bit-identical for every worker count (RNG streams are keyed by fixed
// vertex blocks, not worker ranges), and it passes the deterministic
// checkers.
func TestWorkerDeterminismAndConformance(t *testing.T) {
	const eps = 0.3
	n, _ := conformanceScale(t)
	inst := ConformanceFamilies(192)[0].Make(n, 0) // clique
	delta := params.Delta(inst.Beta, eps)
	base := core.SparsifyOpts(inst.G, core.Options{Delta: delta, Workers: 1}, 77)
	for _, workers := range []int{1, 2, 3, 8} {
		opt := core.Options{Delta: delta, Workers: workers}
		a := core.SparsifyOpts(inst.G, opt, 77)
		b := core.SparsifyOpts(inst.G, opt, 77)
		if err := CheckSameGraph(a, b); err != nil {
			t.Errorf("workers=%d: same-seed rebuild differs: %v", workers, err)
		}
		if err := CheckSameGraph(base, a); err != nil {
			t.Errorf("workers=%d: output differs from workers=1: %v", workers, err)
		}
		if err := CheckSparsifierConformance(inst, a, 2*delta); err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
		if err := CheckSparsifierRatio(inst, a, eps); err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
	}
}
