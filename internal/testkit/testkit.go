// Package testkit is the cross-model conformance and invariant-checking
// harness of the sparsematch library.
//
// The paper's guarantees are quantitative and checkable — the (1+ε)
// sparsifier ratio of Theorem 2.1, the n'/(β+2) matching lower bound of
// Lemma 2.2, the 2·|MCM|·(Δ'+β) edge bound of Observation 2.10, and the
// 2Δ' arboricity bound of Observation 2.12 — and they hold for ANY valid
// instantiation of the per-vertex marking distribution. This package turns
// each statement into an executable checker backed by exact oracles
// (Edmonds' blossom for the MCM, degeneracy peeling for arboricity) and
// provides a differential driver that runs every execution model
// (sequential, distributed, streaming, MPC, dynamic-distributed, fully
// dynamic) on the same certified instance and asserts every applicable
// checker on every model's output.
//
// The building blocks:
//
//   - Instance / Certify — a generated graph carrying a construction-
//     certified β bound and the exact MCM computed once via blossom.
//   - Check* — theorem-indexed invariant checkers returning descriptive
//     errors (see checkers.go for the theorem map).
//   - SparsifierModels / DynamicModels — the differential catalog: each
//     entry builds one execution model's sparsifier (or replayed matcher)
//     with a uniform (delta, seed) interface and declares its effective
//     per-vertex mark cap Δ' for the deterministic bound checkers.
//
// Checkers are pure functions from outputs to errors, so they are usable
// from any package's tests (external test packages may import testkit even
// though testkit imports the model packages). The conformance suite in
// conformance_test.go is the canonical consumer; per-model adoption tests
// live next to each model package.
package testkit

import "fmt"

// Errs collects checker failures and formats them as one error.
type Errs []error

// Add appends err if it is non-nil.
func (e *Errs) Add(err error) {
	if err != nil {
		*e = append(*e, err)
	}
}

// Err returns nil if no failure was collected, else a combined error.
func (e Errs) Err() error {
	if len(e) == 0 {
		return nil
	}
	if len(e) == 1 {
		return e[0]
	}
	msg := fmt.Sprintf("%d failures:", len(e))
	for _, err := range e {
		msg += "\n  - " + err.Error()
	}
	return fmt.Errorf("%s", msg)
}
