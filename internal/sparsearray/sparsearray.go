// Package sparsearray implements constant-time-initializable arrays.
//
// The classic "sparse array" (folklore; see Aho, Hopcroft, Ullman, "The
// Design and Analysis of Computer Algorithms", Exercise 2.12) supports the
// usual Get/Set operations of a fixed-size array plus a Reset operation that
// reinitializes every slot to a default value in O(1) time.
//
// The paper (Section 3.1) relies on this structure for the pos_v arrays that
// emulate Fisher–Yates swaps over read-only adjacency arrays: allocating and
// zero-filling a fresh positions array per vertex would cost O(deg(v)),
// defeating the sublinear time bound, whereas a sparse array costs O(1) per
// Reset and O(1) per access.
//
// This implementation uses the generation-stamp variant: each slot carries
// the generation at which it was last written; Reset bumps the generation,
// logically invalidating all slots at once. Unlike the textbook
// back-pointer scheme this reads uninitialized memory never (Go zeroes
// allocations), and Reset is a single increment.
package sparsearray

import (
	"repro/internal/invariant"
)

// Array is a fixed-length array of values of type V with O(1) Reset.
// The zero value is not usable; construct with New.
//
// Array is not safe for concurrent use.
type Array[V any] struct {
	values []V
	stamps []uint64
	gen    uint64
	def    V
}

// New returns an Array of length n whose slots all read as def.
func New[V any](n int, def V) *Array[V] {
	if n < 0 {
		invariant.Violatef("sparsearray: negative length %d", n)
	}
	return &Array[V]{
		values: make([]V, n),
		stamps: make([]uint64, n),
		gen:    1, // stamps start at 0, so no slot is initially live
		def:    def,
	}
}

// Len returns the length of the array.
func (a *Array[V]) Len() int { return len(a.values) }

// Get returns the value at index i, or the default if the slot has not been
// written since the last Reset.
func (a *Array[V]) Get(i int) V {
	if a.stamps[i] == a.gen {
		return a.values[i]
	}
	return a.def
}

// Set writes v at index i.
func (a *Array[V]) Set(i int, v V) {
	a.values[i] = v
	a.stamps[i] = a.gen
}

// Live reports whether slot i has been written since the last Reset.
func (a *Array[V]) Live(i int) bool { return a.stamps[i] == a.gen }

// Reset reinitializes every slot to the default value in O(1) time.
func (a *Array[V]) Reset() {
	a.gen++
	if a.gen == 0 {
		// Generation counter wrapped (after 2^64 resets); fall back to a
		// full clear to keep correctness. Practically unreachable, but
		// cheap to guard.
		clear(a.stamps)
		a.gen = 1
	}
}

// ResetTo reinitializes every slot to read as def in O(1) time.
func (a *Array[V]) ResetTo(def V) {
	a.def = def
	a.Reset()
}
