package sparsearray

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewDefaults(t *testing.T) {
	a := New(5, -1)
	if a.Len() != 5 {
		t.Fatalf("Len = %d, want 5", a.Len())
	}
	for i := 0; i < 5; i++ {
		if got := a.Get(i); got != -1 {
			t.Errorf("Get(%d) = %d, want -1", i, got)
		}
		if a.Live(i) {
			t.Errorf("Live(%d) = true before any Set", i)
		}
	}
}

func TestSetGet(t *testing.T) {
	a := New(4, 0)
	a.Set(2, 42)
	if got := a.Get(2); got != 42 {
		t.Errorf("Get(2) = %d, want 42", got)
	}
	if got := a.Get(1); got != 0 {
		t.Errorf("Get(1) = %d, want default 0", got)
	}
	if !a.Live(2) || a.Live(1) {
		t.Errorf("Live(2)=%v Live(1)=%v, want true,false", a.Live(2), a.Live(1))
	}
}

func TestReset(t *testing.T) {
	a := New(3, 7)
	a.Set(0, 1)
	a.Set(1, 2)
	a.Set(2, 3)
	a.Reset()
	for i := 0; i < 3; i++ {
		if got := a.Get(i); got != 7 {
			t.Errorf("after Reset Get(%d) = %d, want 7", i, got)
		}
		if a.Live(i) {
			t.Errorf("after Reset Live(%d) = true", i)
		}
	}
	a.Set(1, 99)
	if got := a.Get(1); got != 99 {
		t.Errorf("Set after Reset: Get(1) = %d, want 99", got)
	}
}

func TestResetTo(t *testing.T) {
	a := New(3, 0)
	a.Set(0, 5)
	a.ResetTo(11)
	for i := 0; i < 3; i++ {
		if got := a.Get(i); got != 11 {
			t.Errorf("after ResetTo(11) Get(%d) = %d", i, got)
		}
	}
}

func TestZeroLength(t *testing.T) {
	a := New(0, "x")
	if a.Len() != 0 {
		t.Fatalf("Len = %d, want 0", a.Len())
	}
	a.Reset() // must not panic
}

func TestNegativeLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1, 0)
}

func TestGenerationWrap(t *testing.T) {
	a := New(2, 0)
	a.Set(0, 1)
	a.gen = ^uint64(0) // force the wrap path on next Reset
	a.Reset()
	if a.gen != 1 {
		t.Fatalf("gen after wrap = %d, want 1", a.gen)
	}
	if a.Live(0) || a.Live(1) {
		t.Fatal("slots live after wrap Reset")
	}
	if got := a.Get(0); got != 0 {
		t.Fatalf("Get(0) after wrap = %d, want default 0", got)
	}
	a.Set(1, 9)
	if got := a.Get(1); got != 9 {
		t.Fatalf("Set/Get after wrap = %d, want 9", got)
	}
}

func TestStringValues(t *testing.T) {
	a := New(2, "empty")
	a.Set(0, "hello")
	if a.Get(0) != "hello" || a.Get(1) != "empty" {
		t.Errorf("string values: got %q,%q", a.Get(0), a.Get(1))
	}
}

// TestQuickAgainstReference drives a random op sequence against a plain-map
// reference model, resetting occasionally.
func TestQuickAgainstReference(t *testing.T) {
	f := func(seed uint64, opsRaw []byte) bool {
		const n = 33
		rng := rand.New(rand.NewPCG(seed, 0))
		a := New(n, -7)
		ref := make(map[int]int)
		for _, op := range opsRaw {
			i := rng.IntN(n)
			switch op % 3 {
			case 0:
				v := rng.IntN(1000)
				a.Set(i, v)
				ref[i] = v
			case 1:
				want, ok := ref[i]
				if !ok {
					want = -7
				}
				if a.Get(i) != want {
					return false
				}
				if a.Live(i) != ok {
					return false
				}
			case 2:
				if op%17 == 2 { // reset rarely
					a.Reset()
					ref = make(map[int]int)
				}
			}
		}
		for i := 0; i < n; i++ {
			want, ok := ref[i]
			if !ok {
				want = -7
			}
			if a.Get(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkResetVsClear(b *testing.B) {
	const n = 1 << 16
	a := New(n, 0)
	b.Run("SparseReset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.Set(i%n, i)
			a.Reset()
		}
	})
	b.Run("FullClear", func(b *testing.B) {
		s := make([]int, n)
		for i := 0; i < b.N; i++ {
			s[i%n] = i
			clear(s)
		}
	})
}
