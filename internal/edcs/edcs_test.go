package edcs

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/params"
)

// families returns a small zoo of structurally diverse graphs; EDCS makes no
// assumption on neighborhood independence, so the zoo deliberately includes
// dense families where β(G) is Θ(n).
func families() map[string]*graph.Static {
	return map[string]*graph.Static{
		"clique40":       gen.Clique(40),
		"path50":         gen.Path(50),
		"cycle41":        gen.Cycle(41),
		"star64":         gen.Star(64),
		"bipartite20x30": gen.CompleteBipartite(20, 30),
		"er80":           gen.ErdosRenyi(80, 0.3, 11),
		"regularish":     gen.RandomRegularish(60, 7, 13),
		"empty":          graph.NewBuilder(10).Build(),
	}
}

// TestSparsifyInvariants runs the construction over the zoo and holds the
// output to CheckInvariants: a fixpoint of the add/remove loop is exactly a
// graph where neither P1 nor P2 has a violation.
func TestSparsifyInvariants(t *testing.T) {
	for name, g := range families() {
		for _, opt := range []Options{
			{Beta: 8, Lambda: 0.25},
			{Beta: 16, Lambda: 0.1},
			{Beta: 2, Lambda: 0.5},
		} {
			h := Sparsify(g, opt, 7)
			if err := CheckInvariants(g, h, opt.Beta, opt.Lambda); err != nil {
				t.Errorf("%s beta=%d lambda=%v: %v", name, opt.Beta, opt.Lambda, err)
			}
			if h.M() > SizeUpperBound(g.N(), opt.Beta) {
				t.Errorf("%s beta=%d: |E(H)| = %d exceeds size bound %d",
					name, opt.Beta, h.M(), SizeUpperBound(g.N(), opt.Beta))
			}
		}
	}
}

// TestSparsifyForInvariants covers the ε-resolved entry point: the resolved
// (β_edcs, λ) pair must itself satisfy the invariants it promises.
func TestSparsifyForInvariants(t *testing.T) {
	for name, g := range families() {
		for _, eps := range []float64{0.1, 0.3, 0.5} {
			h := SparsifyFor(g, eps, 3)
			p := params.EDCS{}.ResolveFor(eps)
			if err := CheckInvariants(g, h, p.Beta, p.Lambda); err != nil {
				t.Errorf("%s eps=%v: %v", name, eps, err)
			}
		}
	}
}

// TestDeterminism pins the reproducibility contract: bit-identical output for
// a fixed seed across repeated runs AND across worker counts (the fixpoint is
// sequential, so the Workers field must not influence anything).
func TestDeterminism(t *testing.T) {
	g := gen.ErdosRenyi(120, 0.2, 5)
	base := Sparsify(g, Options{Beta: 10, Lambda: 0.2, Workers: 1}, 99)
	for _, workers := range []int{0, 1, 2, 4, 16} {
		for run := 0; run < 2; run++ {
			h := Sparsify(g, Options{Beta: 10, Lambda: 0.2, Workers: workers}, 99)
			if h.M() != base.M() {
				t.Fatalf("workers=%d run=%d: |E| = %d, want %d", workers, run, h.M(), base.M())
			}
			he, be := h.Edges(), base.Edges()
			for i := range he {
				if he[i] != be[i] {
					t.Fatalf("workers=%d run=%d: edge %d = %v, want %v", workers, run, i, he[i], be[i])
				}
			}
		}
	}
}

// TestSeedVariation: different seeds explore different fixpoints on a graph
// with many valid EDCSs — if every seed produced the same subgraph the
// permutation would be dead code.
func TestSeedVariation(t *testing.T) {
	g := gen.Clique(60)
	a := Sparsify(g, Options{Beta: 8, Lambda: 0.25}, 1)
	b := Sparsify(g, Options{Beta: 8, Lambda: 0.25}, 2)
	ae, be := a.Edges(), b.Edges()
	if len(ae) == len(be) {
		same := true
		for i := range ae {
			if ae[i] != be[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("seeds 1 and 2 produced identical EDCSs on a clique")
		}
	}
}

// TestMatchingQuality checks the reason the backend exists: MCM(H) within
// 3/2 + O(λ) of MCM(G) on families with huge neighborhood independence,
// where Theorem 2.1 offers nothing.
func TestMatchingQuality(t *testing.T) {
	const eps = 0.3
	for name, g := range map[string]*graph.Static{
		"bipartite30x30": gen.CompleteBipartite(30, 30),
		"er100":          gen.ErdosRenyi(100, 0.15, 21),
		"clique50":       gen.Clique(50),
	} {
		mcm := matching.MaximumGeneral(g).Size()
		if mcm == 0 {
			t.Fatalf("%s: degenerate instance", name)
		}
		h := SparsifyFor(g, eps, 17)
		got := matching.MaximumGeneral(h).Size()
		// Floor: MCM(G) / (3/2 + ε), rounded down.
		floor := int(float64(mcm) / (1.5 + eps))
		if got < floor {
			t.Errorf("%s: MCM(H) = %d below floor %d (MCM(G) = %d, |E(H)| = %d)",
				name, got, floor, mcm, h.M())
		}
	}
}

// TestCheckInvariantsRejects feeds CheckInvariants hand-built violations of
// each property so the checker itself is known to have teeth.
func TestCheckInvariantsRejects(t *testing.T) {
	g := gen.Clique(6)

	// P1 violation: H = the whole clique has degree sums 10 > beta for any
	// beta < 10.
	if err := CheckInvariants(g, g, 4, 0.25); err == nil {
		t.Error("P1 violation not detected")
	}

	// P2 violation: H = empty subgraph, every clique edge has degree sum 0.
	empty := graph.NewBuilder(6).Build()
	if err := CheckInvariants(g, empty, 4, 0.25); err == nil {
		t.Error("P2 violation not detected")
	}

	// Containment violation: H has an edge g lacks.
	pb := graph.NewBuilder(4)
	pb.AddEdge(0, 1)
	pg := pb.Build()
	hb := graph.NewBuilder(4)
	hb.AddEdge(2, 3)
	if err := CheckInvariants(pg, hb.Build(), 8, 0.25); err == nil {
		t.Error("containment violation not detected")
	}
}

// TestOptionValidation pins the panic contract on malformed parameters.
func TestOptionValidation(t *testing.T) {
	g := gen.Path(4)
	for _, opt := range []Options{
		{Beta: 1, Lambda: 0.25},
		{Beta: 8, Lambda: 0},
		{Beta: 8, Lambda: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Sparsify(%+v) did not panic", opt)
				}
			}()
			Sparsify(g, opt, 1)
		}()
	}
}
