// Package edcs implements the edge-degree-constrained-subgraph matching
// sparsifier — the backend whose approximation guarantee holds on ARBITRARY
// graphs, complementing the paper's G_Δ construction (whose Theorem 2.1
// guarantee needs bounded neighborhood independence).
//
// An EDCS(G, β, λ) is a subgraph H of G satisfying two degree properties:
//
//	P1 (bounded edge degree): every edge (u,v) ∈ H has
//	    deg_H(u) + deg_H(v) ≤ β;
//	P2 (no underfull non-edge): every edge (u,v) ∈ G \ H has
//	    deg_H(u) + deg_H(v) ≥ ⌈β·(1−λ)⌉.
//
// Assadi–Bernstein ("Towards a Unified Theory of Sparsification for
// Matching Problems") show MCM(H) ≥ MCM(G)/(3/2 + O(λ)) for β = Ω(1/λ), and
// Azarmehr–Behnezhad–Roghani give the tight analysis of that ratio. Unlike
// Theorem 2.1, no bound on the neighborhood independence number is needed —
// EDCS is the backend of choice when β(G) is large or unknown.
//
// The construction is the classic edge-addition/removal fixpoint: scan the
// edges in a seed-stable order, add any edge violating P2, remove any edge
// violating P1, and repeat until a full pass changes nothing. The standard
// potential function Φ(H) = Σ_v (β−1)·deg_H(v) − Σ_{(u,v)∈H}(deg_H(u)+
// deg_H(v)) strictly increases with every fix and is bounded by n·β², so
// the loop terminates after O(n·β²) edge flips.
package edcs

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/arcs"
	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/params"
)

// Options configures the EDCS construction. Zero-valued fields cannot be
// resolved locally (the parameters derive from ε, which Options does not
// carry) — use params.EDCS.ResolveFor or SparsifyFor for the defaults.
type Options struct {
	// Beta is the P1 degree-sum bound (β_edcs ≥ 2). Note this is NOT the
	// neighborhood independence number; the clash of symbols is the
	// literature's, kept here so cross-referencing the papers stays easy.
	Beta int
	// Lambda is the P2 slack in (0, 1).
	Lambda float64
	// Workers is accepted for interface symmetry with the G_Δ backend. The
	// fixpoint loop is inherently sequential, so the construction ignores
	// it — which makes the output trivially invariant to the worker count.
	Workers int
}

// maxPasses bounds the fixpoint loop for a graph on n vertices: the
// potential argument caps the number of CHANGING passes at n·β² (each pass
// that does not terminate performs at least one flip), plus one final
// verification pass. Exceeding it means the implementation is broken, not
// the input — so it is an invariant violation, not an error.
func maxPasses(n, beta int) int {
	return n*beta*beta + 2
}

// Sparsify builds an EDCS of g with explicit parameters. The scan order of
// the fixpoint loop is a seed-keyed permutation of the edge list, so the
// output is deterministic for a fixed (g, Beta, Lambda, seed) and
// bit-identical across runs and worker counts; different seeds explore
// different (equally valid) fixpoints.
func Sparsify(g *graph.Static, opt Options, seed uint64) *graph.Static {
	if opt.Beta < 2 {
		invariant.Violatef("edcs: Beta must be >= 2, got %d", opt.Beta)
	}
	if opt.Lambda <= 0 || opt.Lambda >= 1 {
		invariant.Violatef("edcs: Lambda must be in (0,1), got %v", opt.Lambda)
	}
	lowTh := params.EDCSLowThreshold(opt.Beta, opt.Lambda)
	n := g.N()
	edges := g.Edges()
	m := len(edges)

	// Seed-stable tie-break order: a Fisher–Yates permutation of the edge
	// indices drawn from a PCG keyed by the seed. The edge list itself is
	// canonical (sorted), so the permutation is the only randomness.
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewPCG(seed, 0xedc5))
	for i := m - 1; i > 0; i-- {
		j := rng.IntN(i + 1)
		order[i], order[j] = order[j], order[i]
	}

	deg := make([]int32, n)
	inH := make([]bool, m)
	kept := 0
	for pass := 0; ; pass++ {
		if pass > maxPasses(n, opt.Beta) {
			invariant.Violatef("edcs: fixpoint exceeded %d passes (n=%d beta=%d)", maxPasses(n, opt.Beta), n, opt.Beta)
		}
		changed := false
		for _, ei := range order {
			e := edges[ei]
			s := int(deg[e.U] + deg[e.V])
			if inH[ei] {
				if s > opt.Beta {
					inH[ei] = false
					deg[e.U]--
					deg[e.V]--
					kept--
					changed = true
				}
			} else if s < lowTh {
				inH[ei] = true
				deg[e.U]++
				deg[e.V]++
				kept++
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	buf := arcs.Get()
	buf.Grow(kept)
	for ei, in := range inH {
		if in {
			buf.Add(edges[ei].U, edges[ei].V)
		}
	}
	sp := graph.FromPackedArcs(n, buf.Keys())
	buf.Release()
	return sp
}

// SparsifyFor builds an EDCS of g with (β_edcs, λ) resolved from ε by the
// unified parameter resolution (params.EDCS.ResolveFor).
func SparsifyFor(g *graph.Static, eps float64, seed uint64) *graph.Static {
	p := params.EDCS{}.ResolveFor(eps)
	return Sparsify(g, Options{Beta: p.Beta, Lambda: p.Lambda}, seed)
}

// SizeUpperBound returns the deterministic bound on |E(H)| implied by P1:
// every H-edge endpoint has deg_H < β, so |E(H)| ≤ n·(β−1)/2.
func SizeUpperBound(n, beta int) int {
	return n * (beta - 1) / 2
}

// CheckInvariants verifies that h is a valid EDCS(g, beta, lambda):
// h ⊆ g, property P1 on every h-edge, and property P2 on every g-edge
// outside h. It returns a descriptive error naming the first violated
// property and edge, or nil.
func CheckInvariants(g, h *graph.Static, beta int, lambda float64) error {
	lowTh := params.EDCSLowThreshold(beta, lambda)
	return checkInvariants(g, h, beta, lowTh)
}

// checkInvariants is CheckInvariants with the resolved integer threshold.
func checkInvariants(g, h *graph.Static, beta, lowTh int) error {
	if h.N() != g.N() {
		return fmt.Errorf("edcs: vertex count %d != %d", h.N(), g.N())
	}
	for v := int32(0); v < int32(h.N()); v++ {
		for _, w := range h.Neighbors(v) {
			if v >= w {
				continue
			}
			if !g.HasEdge(v, w) {
				return fmt.Errorf("edcs: edge (%d,%d) not in the base graph", v, w)
			}
			if s := h.Degree(v) + h.Degree(w); s > beta {
				return fmt.Errorf("edcs: P1 violated at (%d,%d): degree sum %d > %d", v, w, s, beta)
			}
		}
	}
	for v := int32(0); v < int32(g.N()); v++ {
		for _, w := range g.Neighbors(v) {
			if v >= w || h.HasEdge(v, w) {
				continue
			}
			if s := h.Degree(v) + h.Degree(w); s < lowTh {
				return fmt.Errorf("edcs: P2 violated at (%d,%d): degree sum %d < %d", v, w, s, lowTh)
			}
		}
	}
	return nil
}
