package edcs

import (
	"testing"

	"repro/internal/graph"
)

// FuzzEDCSInvariants decodes arbitrary bytes into a graph plus (β, λ)
// parameters and holds the construction to its full contract: the output is
// a valid EDCS(G, β, λ) (properties P1 and P2, subgraph containment), fits
// the P1 size bound, and is bit-identical when rebuilt with the same seed.
func FuzzEDCSInvariants(f *testing.F) {
	f.Add([]byte{8, 0, 1, 1, 2, 2, 3, 3, 0})
	f.Add([]byte{2, 0, 1})
	f.Add([]byte{16, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{5, 200, 3, 0, 1, 0, 2, 0, 3, 0, 4, 1, 2, 1, 3, 1, 4, 2, 3, 2, 4, 3, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		n := int32(data[0]%24) + 2
		beta := int(data[1]%14) + 2
		lambda := float64(int(data[2]%9)+1) / 10 // {0.1, ..., 0.9}
		b := graph.NewBuilder(int(n))
		for i := 3; i+1 < len(data); i += 2 {
			u, v := int32(data[i])%n, int32(data[i+1])%n
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		opt := Options{Beta: beta, Lambda: lambda}
		h := Sparsify(g, opt, 42)
		if err := CheckInvariants(g, h, beta, lambda); err != nil {
			t.Fatalf("beta=%d lambda=%v: %v", beta, lambda, err)
		}
		if h.M() > SizeUpperBound(int(n), beta) {
			t.Fatalf("|E(H)| = %d exceeds size bound %d", h.M(), SizeUpperBound(int(n), beta))
		}
		h2 := Sparsify(g, opt, 42)
		if h.M() != h2.M() {
			t.Fatalf("same-seed rebuild differs in size: %d vs %d", h.M(), h2.M())
		}
		he, h2e := h.Edges(), h2.Edges()
		for i := range he {
			if he[i] != h2e[i] {
				t.Fatalf("same-seed rebuild differs at edge %d: %v vs %v", i, he[i], h2e[i])
			}
		}
	})
}
