package serve_test

import (
	"errors"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"testing"

	"repro/internal/serve"
	"repro/internal/serve/wire"
)

// TestServerRejectsInvalidUpdates pins the synchronous admission check:
// out-of-range endpoints and self-loops come back as typed ServerErrors
// and never reach the matcher.
func TestServerRejectsInvalidUpdates(t *testing.T) {
	s, addr := startServer(t, serve.Config{N: 10, Shards: 2})
	bad := [][]wire.Update{
		{{Insert: true, U: 3, V: 3}},   // self-loop
		{{Insert: true, U: -1, V: 2}},  // negative endpoint
		{{Insert: true, U: 2, V: 10}},  // endpoint == N
		{{Insert: true, U: 2, V: 999}}, // far out of range
	}
	for _, ups := range bad {
		c := dial(t, addr)
		err := c.SendUpdates(ups, 8)
		var se *serve.ServerError
		if !errors.As(err, &se) {
			t.Fatalf("updates %+v: err = %v, want *ServerError", ups, err)
		}
		if se.Code != wire.CodeInvalidUpdate {
			t.Fatalf("updates %+v: code %d, want CodeInvalidUpdate", ups, se.Code)
		}
	}
	if got := s.Applied(); got != 0 {
		t.Fatalf("applied %d after only invalid batches", got)
	}
}

// TestServerStats checks the counter block: pairs arrive sorted (a wire
// invariant), core counters reconcile with the workload, and the text
// dump renders every pair.
func TestServerStats(t *testing.T) {
	const n = 60
	_, ups := testTrace(t, n, 6, 200, 3)
	_, addr := startServer(t, serve.Config{N: n, Shards: 3, Beta: testBeta, Eps: testEps})
	c := dial(t, addr)
	if err := c.SendUpdates(ups, 16); err != nil {
		t.Fatal(err)
	}
	pairs, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(pairs, func(i, j int) bool { return pairs[i].Name < pairs[j].Name }) {
		t.Fatal("stat pairs are not sorted by name")
	}
	byName := map[string]int64{}
	for _, p := range pairs {
		byName[p.Name] = p.Value
	}
	total := int64((len(ups) + 15) / 16)
	if got := byName["applied_seq"]; got != total {
		t.Fatalf("applied_seq %d, want %d", got, total)
	}
	if got := byName["updates_applied"]; got != int64(len(ups)) {
		t.Fatalf("updates_applied %d, want %d", got, len(ups))
	}
	if byName["matching_size"] <= 0 {
		t.Fatal("matching_size not positive after a dense load")
	}
	if byName["latency_p99_nanos"] < byName["latency_p50_nanos"] {
		t.Fatal("p99 latency below p50")
	}
	if _, ok := byName["shard002_queue_highwater"]; !ok {
		t.Fatal("missing per-shard queue high-water entries")
	}
	dump := serve.DumpStats(pairs)
	if got := strings.Count(dump, "\n"); got != len(pairs) {
		t.Fatalf("dump has %d lines, want %d", got, len(pairs))
	}
}

// TestCheckpointOverWire drives the CHECKPOINT command end to end: the
// wire request writes a durable file, and a server restored from that
// file continues the stream bit-identically to the uninterrupted server.
func TestCheckpointOverWire(t *testing.T) {
	const n = 120
	_, ups := testTrace(t, n, 8, 600, 19)
	ckptDir := filepath.Join(t.TempDir(), "ckpts")
	_, addr := startServer(t, serve.Config{
		N: n, Shards: 2, Beta: testBeta, Eps: testEps, Seed: testSeed,
		CheckpointDir: ckptDir,
	})
	c := dial(t, addr)
	cut := len(ups) / 2
	cut -= cut % 32 // align to the batch size so the suffix replays cleanly
	if err := c.SendUpdates(ups[:cut], 32); err != nil {
		t.Fatal(err)
	}
	seq, nbytes, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(cut/32) || nbytes == 0 {
		t.Fatalf("checkpoint seq=%d bytes=%d, want seq=%d and bytes>0", seq, nbytes, cut/32)
	}
	if err := c.SendUpdates(ups, 32); err != nil { // finish the stream
		t.Fatal(err)
	}
	wantMates, _, err := c.Matching()
	if err != nil {
		t.Fatal(err)
	}

	ck, _, err := serve.RestoreLatest(nil, ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := serve.NewFromCheckpoint(serve.Config{Shards: 8}, ck)
	if err != nil {
		t.Fatal(err)
	}
	addr2 := listen(t, restored)
	c2 := dial(t, addr2)
	if err := c2.SendUpdates(ups, 32); err != nil {
		t.Fatal(err)
	}
	mates, _, err := c2.Matching()
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(mates, wantMates) {
		t.Fatal("restored continuation diverged from the uninterrupted server")
	}
}

// TestQuitDrains checks the QUIT command: the reply carries the final
// committed sequence and the server refuses new work afterwards.
func TestQuitDrains(t *testing.T) {
	const n = 40
	_, ups := testTrace(t, n, 6, 100, 5)
	s, addr := startServer(t, serve.Config{N: n, Shards: 2, Beta: testBeta, Eps: testEps})
	c := dial(t, addr)
	if err := c.SendUpdates(ups, 16); err != nil {
		t.Fatal(err)
	}
	final, err := c.Quit()
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64((len(ups) + 15) / 16); final != want {
		t.Fatalf("quit reported seq %d, want %d", final, want)
	}
	s.Shutdown() // must already be stopped; idempotent
	if _, err := serve.Dial(addr); err == nil {
		t.Fatal("dial succeeded after quit")
	}
}

// TestBackendRegistry sanity-checks the registry surface.
func TestBackendRegistry(t *testing.T) {
	names := serve.BackendNames()
	if !slices.Contains(names, "gdelta") || !slices.Contains(names, "edcs") {
		t.Fatalf("backends = %v", names)
	}
	if !slices.IsSorted(names) {
		t.Fatalf("backends %v not sorted", names)
	}
	if _, err := serve.BackendByName("nope"); err == nil {
		t.Fatal("unknown backend accepted")
	}
	b, err := serve.BackendByName("")
	if err != nil || b.Name != serve.DefaultBackend {
		t.Fatalf("default backend = %v, %v", b.Name, err)
	}
	if _, err := b.New(10, 0, 0.3, 1); err == nil {
		t.Fatal("beta=0 accepted")
	}
	if _, err := b.New(10, 2, 1.5, 1); err == nil {
		t.Fatal("eps=1.5 accepted")
	}
	if _, err := serve.New(serve.Config{N: 10, Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
}
