package serve

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzCheckpoints are representative valid checkpoints used to seed both
// checkpoint-decoding fuzz targets.
func fuzzCheckpoints() []*Checkpoint {
	return []*Checkpoint{
		{},
		{Applied: 7, N: 100, Beta: 2, Eps: 0.3, Seed: 9, Backend: "gdelta", Payload: []byte("DMCK-ish")},
		{Applied: 1 << 40, N: 1 << 20, Beta: 64, Eps: 0.999, Seed: ^uint64(0), Backend: "edcs", Payload: bytes.Repeat([]byte{0xAB}, 300)},
	}
}

// FuzzServerCheckpointDecode pins the SMCP codec's safety contracts on
// arbitrary bytes: no panics, every error typed (*CheckpointError or
// *CheckpointVersionError), and every accepted input canonical — decode
// then re-encode reproduces the input exactly.
func FuzzServerCheckpointDecode(f *testing.F) {
	for _, c := range fuzzCheckpoints() {
		b, err := c.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)-1]) // truncated tail
		f.Add(b[:7])        // truncated header
	}
	f.Add([]byte{})
	f.Add([]byte("SMCPx"))
	f.Add([]byte("XXXX\x01"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalServerCheckpoint(data)
		if err != nil {
			var ce *CheckpointError
			var ve *CheckpointVersionError
			if !errors.As(err, &ce) && !errors.As(err, &ve) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			return
		}
		enc, err := c.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded checkpoint does not re-marshal: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("non-canonical accept:\n in  %x\n out %x", data, enc)
		}
		// Field-wise comparison would trip over NaN Eps values, which the
		// codec legitimately round-trips; byte equality is the real contract.
		c2, err := UnmarshalServerCheckpoint(enc)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		enc2, err := c2.MarshalBinary()
		if err != nil || !bytes.Equal(enc2, enc) {
			t.Fatalf("second round trip diverged (err %v)", err)
		}
	})
}

// FuzzEnvelopeDecode pins the durable SMCE envelope: open never panics,
// every rejection is typed, and every accepted envelope re-seals to
// exactly the input bytes — the CRC leaves no slack for non-canonical
// encodings.
func FuzzEnvelopeDecode(f *testing.F) {
	for i, c := range fuzzCheckpoints() {
		payload, err := c.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		b := sealEnvelope(uint64(i+1), payload)
		f.Add(b)
		f.Add(b[:len(b)-2]) // torn tail
		f.Add(b[:9])        // torn header
		flipped := append([]byte(nil), b...)
		flipped[len(flipped)/2] ^= 0x20 // CRC mismatch
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("SMCE\x01"))
	f.Add(sealEnvelope(0, nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		gen, payload, err := openEnvelope(data)
		if err != nil {
			var ce *CheckpointError
			var ve *CheckpointVersionError
			if !errors.As(err, &ce) && !errors.As(err, &ve) {
				t.Fatalf("untyped envelope error %T: %v", err, err)
			}
			return
		}
		if !bytes.Equal(sealEnvelope(gen, payload), data) {
			t.Fatalf("accepted envelope does not re-seal canonically")
		}
	})
}
