package serve

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"

	"repro/internal/faults"
)

// Durable generational checkpoints. The single-file temp+rename protocol
// of PR 7 survives a crash between writes, but not a torn write, a failed
// fsync, or silent media corruption: one bad byte in the only copy bricks
// recovery. This layer fixes all three failure modes at once:
//
//   - every checkpoint is sealed in a CRC32-checksummed, versioned
//     envelope, so damage is DETECTED rather than decoded into garbage;
//   - the write path is the full durability protocol — temp file → write →
//     fsync(file) → rename → fsync(dir) — through the faults.FS interface,
//     so a storage fault injector can tear it at every step;
//   - the store keeps the last K generations (ckpt.000001, ckpt.000002,
//     …), and restore scans newest→oldest past corrupt or truncated
//     generations, reporting what it skipped, so one bad write NEVER
//     loses more than the updates since the previous good checkpoint.
//
// Envelope layout (fixed-width big-endian, canonical):
//
//	magic   4 bytes "SMCE"
//	version 1 byte
//	gen     u64   generation number (must match the filename)
//	length  u32   payload length
//	payload       a server checkpoint ("SMCP", see checkpoint.go)
//	crc     u32   CRC-32C (Castagnoli) over every preceding byte
const (
	envelopeMagic = "SMCE"
	// EnvelopeVersion is the durable envelope format version.
	EnvelopeVersion = 1
	// envelopeOverhead is the envelope's size beyond the payload.
	envelopeOverhead = 4 + 1 + 8 + 4 + 4
)

// crcTable is the Castagnoli polynomial — hardware-accelerated on amd64
// and arm64, and better burst-error detection than IEEE.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// generationPrefix names checkpoint generations: ckpt.000001, ckpt.000002,
// … (the width grows past a million generations; the scan parses digits,
// not widths).
const generationPrefix = "ckpt."

// DefaultCheckpointKeep is how many checkpoint generations a store
// retains when Config.CheckpointKeep is zero.
const DefaultCheckpointKeep = 3

// generationName renders the file name of generation gen.
func generationName(gen uint64) string {
	return fmt.Sprintf("%s%06d", generationPrefix, gen)
}

// parseGeneration extracts the generation number from a directory entry;
// ok is false for temp files and foreign names.
func parseGeneration(name string) (uint64, bool) {
	digits, found := strings.CutPrefix(name, generationPrefix)
	if !found || digits == "" || faults.IsTemp(name) {
		return 0, false
	}
	gen, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// sealEnvelope wraps payload in a checksummed generation envelope.
func sealEnvelope(gen uint64, payload []byte) []byte {
	dst := make([]byte, 0, envelopeOverhead+len(payload))
	dst = append(dst, envelopeMagic...)
	dst = append(dst, EnvelopeVersion)
	dst = binary.BigEndian.AppendUint64(dst, gen)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	dst = binary.BigEndian.AppendUint32(dst, crc32.Checksum(dst, crcTable))
	return dst
}

// openEnvelope validates and unwraps a sealed envelope, returning the
// generation it claims and its payload. Every failure is a typed
// *CheckpointError; the CRC check makes truncation, torn writes, and bit
// flips indistinguishable from each other but never from success.
func openEnvelope(b []byte) (uint64, []byte, error) {
	if len(b) < envelopeOverhead {
		return 0, nil, &CheckpointError{Offset: len(b), Why: fmt.Sprintf("envelope truncated: %d bytes, need at least %d", len(b), envelopeOverhead)}
	}
	if string(b[:4]) != envelopeMagic {
		return 0, nil, &CheckpointError{Offset: 0, Why: fmt.Sprintf("bad envelope magic %q, want %q", b[:4], envelopeMagic)}
	}
	if b[4] != EnvelopeVersion {
		return 0, nil, &CheckpointVersionError{Got: b[4]}
	}
	gen := binary.BigEndian.Uint64(b[5:13])
	plen := binary.BigEndian.Uint32(b[13:17])
	if int64(plen) != int64(len(b)-envelopeOverhead) {
		return 0, nil, &CheckpointError{Offset: 13, Why: fmt.Sprintf("envelope claims %d payload bytes, file carries %d", plen, len(b)-envelopeOverhead)}
	}
	body := b[:len(b)-4]
	want := binary.BigEndian.Uint32(b[len(b)-4:])
	if got := crc32.Checksum(body, crcTable); got != want {
		return 0, nil, &CheckpointError{Offset: len(body), Why: fmt.Sprintf("checksum mismatch: file %08x, computed %08x", want, got)}
	}
	return gen, b[17 : 17+int(plen)], nil
}

// A CorruptCheckpointError reports one checkpoint generation that could
// not be loaded: torn, bit-flipped, truncated, or mis-encoded. The restore
// scan collects one per skipped generation.
type CorruptCheckpointError struct {
	Path string
	Gen  uint64
	Err  error
}

func (e *CorruptCheckpointError) Error() string {
	return fmt.Sprintf("serve: checkpoint generation %d (%s): %v", e.Gen, e.Path, e.Err)
}

func (e *CorruptCheckpointError) Unwrap() error { return e.Err }

// A NoValidCheckpointError reports a restore scan that found no loadable
// generation: either the directory holds none, or every one is damaged
// (each listed in Skipped, newest first).
type NoValidCheckpointError struct {
	Dir     string
	Skipped []*CorruptCheckpointError
}

func (e *NoValidCheckpointError) Error() string {
	if len(e.Skipped) == 0 {
		return fmt.Sprintf("serve: no checkpoint generations in %s", e.Dir)
	}
	return fmt.Sprintf("serve: all %d checkpoint generations in %s are corrupt (newest: %v)",
		len(e.Skipped), e.Dir, e.Skipped[0])
}

// RestoreReport documents a restore scan: the generation that loaded and
// every newer generation that had to be skipped as corrupt.
type RestoreReport struct {
	// Gen and Path identify the generation that restored.
	Gen  uint64
	Path string
	// Skipped lists newer generations that failed to load, newest first —
	// the operator-visible record of how much durability the fault cost.
	Skipped []*CorruptCheckpointError
}

// Store manages durable generational checkpoints in one directory. It is
// not safe for concurrent use; the server serializes checkpoint writes
// through its applier and mutex.
type Store struct {
	fs   faults.FS
	dir  string
	keep int
	gen  uint64 // last generation number handed out
}

// OpenStore opens (creating if needed) a generation directory. New writes
// continue after the highest generation already present — including
// corrupt ones, so a damaged newest generation is never overwritten in
// place.
func OpenStore(fs faults.FS, dir string, keep int) (*Store, error) {
	if fs == nil {
		fs = faults.OSFS{}
	}
	if keep <= 0 {
		keep = DefaultCheckpointKeep
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	st := &Store{fs: fs, dir: dir, keep: keep}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint dir scan: %w", err)
	}
	for _, name := range names {
		if gen, ok := parseGeneration(name); ok && gen > st.gen {
			st.gen = gen
		}
	}
	return st, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

// Generations lists the complete (non-temp) generation numbers on disk in
// ascending order.
func (st *Store) Generations() ([]uint64, error) {
	names, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint dir scan: %w", err)
	}
	var gens []uint64
	for _, name := range names {
		if gen, ok := parseGeneration(name); ok {
			gens = append(gens, gen)
		}
	}
	return gens, nil
}

// Write durably persists one checkpoint as the next generation:
//
//	encode → seal → create temp → write → fsync(file) → close →
//	rename(temp, ckpt.NNNNNN) → fsync(dir) → prune old generations
//
// A crash or injected fault at ANY step leaves every previously completed
// generation untouched: the new bytes live under a temp name until the
// rename, the rename is atomic, and pruning runs only after the new
// generation is fully durable. On success it returns the generation
// number, its path, and the bytes written.
func (st *Store) Write(c *Checkpoint) (uint64, string, int, error) {
	payload, err := c.MarshalBinary()
	if err != nil {
		return 0, "", 0, err
	}
	// Claim the generation number before touching the disk so a failed
	// attempt never reuses a name a torn file might already occupy.
	st.gen++
	gen := st.gen
	b := sealEnvelope(gen, payload)
	final := st.dir + "/" + generationName(gen)
	tmp := faults.TempName(final)

	fail := func(stage string, err error) (uint64, string, int, error) {
		// Best-effort cleanup; the restore scan ignores temp files anyway.
		st.fs.Remove(tmp)
		return 0, "", 0, fmt.Errorf("serve: checkpoint %s: %w", stage, err)
	}
	f, err := st.fs.Create(tmp)
	if err != nil {
		return fail("create", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fail("write", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fail("fsync", err)
	}
	if err := f.Close(); err != nil {
		return fail("close", err)
	}
	if err := st.fs.Rename(tmp, final); err != nil {
		return fail("rename", err)
	}
	if err := st.fs.SyncDir(st.dir); err != nil {
		// The rename happened; the generation may or may not be durable.
		// Report the failure — the caller counts it — but do not prune:
		// the previous generation must survive until this one provably
		// does.
		return 0, "", 0, fmt.Errorf("serve: checkpoint dir fsync: %w", err)
	}
	st.prune(gen)
	return gen, final, len(b), nil
}

// prune removes generations older than the keep window, best-effort: a
// failed remove costs disk space, never correctness.
func (st *Store) prune(newest uint64) {
	if newest <= uint64(st.keep) {
		return
	}
	cutoff := newest - uint64(st.keep)
	names, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return
	}
	for _, name := range names {
		if gen, ok := parseGeneration(name); ok && gen <= cutoff {
			st.fs.Remove(st.dir + "/" + name)
		} else if faults.IsTemp(name) {
			// Leftover temp from a crashed write: never restorable, safe to
			// sweep.
			st.fs.Remove(st.dir + "/" + name)
		}
	}
}

// Restore scans generations newest→oldest and returns the first that
// loads cleanly, together with a report of every newer generation skipped
// as corrupt. If nothing loads it returns a *NoValidCheckpointError
// carrying the full damage list.
func (st *Store) Restore() (*Checkpoint, *RestoreReport, error) {
	gens, err := st.Generations()
	if err != nil {
		return nil, nil, err
	}
	report := &RestoreReport{}
	for i := len(gens) - 1; i >= 0; i-- {
		gen := gens[i]
		path := st.dir + "/" + generationName(gen)
		c, err := st.load(gen, path)
		if err != nil {
			report.Skipped = append(report.Skipped, &CorruptCheckpointError{Path: path, Gen: gen, Err: err})
			continue
		}
		report.Gen, report.Path = gen, path
		return c, report, nil
	}
	return nil, nil, &NoValidCheckpointError{Dir: st.dir, Skipped: report.Skipped}
}

// load reads and fully validates one generation file.
func (st *Store) load(gen uint64, path string) (*Checkpoint, error) {
	b, err := st.fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	got, payload, err := openEnvelope(b)
	if err != nil {
		return nil, err
	}
	if got != gen {
		return nil, &CheckpointError{Offset: 5, Why: fmt.Sprintf("envelope generation %d under filename generation %d", got, gen)}
	}
	return UnmarshalServerCheckpoint(payload)
}

// RestoreLatest opens dir and restores its newest loadable generation —
// the one-call form `matchd -restore` uses. fs == nil uses the real
// filesystem.
func RestoreLatest(fs faults.FS, dir string) (*Checkpoint, *RestoreReport, error) {
	st, err := OpenStore(fs, dir, 0)
	if err != nil {
		return nil, nil, err
	}
	return st.Restore()
}
