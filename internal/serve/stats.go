package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/serve/wire"
)

// latencyRingSize is the capacity of the per-server latency reservoir; a
// power of two keeps the wrap a mask. 4096 samples is enough for stable
// p99 estimates over a window without unbounded memory.
const latencyRingSize = 4096

// latencyRing records the most recent batch-apply latencies (receive →
// commit, in the server clock's nanoseconds) and answers quantile queries
// over that window. A ring, not a full history: the serving path must stay
// allocation-free per batch.
type latencyRing struct {
	mu     sync.Mutex
	buf    [latencyRingSize]int64 //sparse:guardedby mu
	next   int                    //sparse:guardedby mu
	filled int                    //sparse:guardedby mu
}

func (r *latencyRing) record(nanos int64) {
	r.mu.Lock()
	r.buf[r.next] = nanos
	r.next = (r.next + 1) & (latencyRingSize - 1)
	if r.filled < latencyRingSize {
		r.filled++
	}
	r.mu.Unlock()
}

// quantiles returns the q-quantiles (each in [0,1]) of the current window
// in one pass; zeros if no samples have been recorded.
func (r *latencyRing) quantiles(qs ...float64) []int64 {
	r.mu.Lock()
	sample := make([]int64, r.filled)
	copy(sample, r.buf[:r.filled])
	r.mu.Unlock()
	out := make([]int64, len(qs))
	if len(sample) == 0 {
		return out
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	for i, q := range qs {
		k := int(q * float64(len(sample)-1))
		if k < 0 {
			k = 0
		}
		if k >= len(sample) {
			k = len(sample) - 1
		}
		out[i] = sample[k]
	}
	return out
}

// serverStats is the server's operational counter block. Everything is
// atomic: ingest shards, the applier, and STATS readers touch it
// concurrently without locks.
type serverStats struct {
	batchesReceived  atomic.Int64 // well-formed batches accepted from conns
	batchesInvalid   atomic.Int64 // batches rejected by validation
	batchesDuplicate atomic.Int64 // retransmits and dup-faults absorbed by seq dedup
	batchesApplied   atomic.Int64 // batches committed by the applier
	updatesApplied   atomic.Int64
	insertsApplied   atomic.Int64  // inserts that changed the graph
	deletesApplied   atomic.Int64  // deletes that changed the graph
	faultsDropped    atomic.Int64  // batches discarded by the fault injector
	faultsDuped      atomic.Int64  // extra deliveries injected
	faultsDelayed    atomic.Int64  // batches held back by delay faults
	checkpoints      atomic.Int64  // checkpoints written
	checkpointErrors atomic.Int64  // durable checkpoint writes that failed
	checkpointGen    atomic.Uint64 // newest durable checkpoint generation
	lastCheckpointed atomic.Uint64
	loadshedBatches  atomic.Int64 // batches refused by the admission quota
	connsOpened      atomic.Int64 // connections accepted into the protocol loop
	connsEvicted     atomic.Int64 // connections dropped for stalling past a deadline
	startNanos       int64
	latency          latencyRing
	queueHighWater   []atomic.Int64 // per shard, max observed queue depth
}

func newServerStats(shards int, startNanos int64) *serverStats {
	return &serverStats{
		startNanos:     startNanos,
		queueHighWater: make([]atomic.Int64, shards),
	}
}

func (s *serverStats) observeQueueDepth(shard, depth int) {
	hw := &s.queueHighWater[shard]
	for {
		cur := hw.Load()
		if int64(depth) <= cur || hw.CompareAndSwap(cur, int64(depth)) {
			return
		}
	}
}

// pairs renders the counter block as the sorted name/value list the STATS
// wire command carries. applied/size/nowNanos come from the server so the
// snapshot is taken at one point.
func (s *serverStats) pairs(applied uint64, matchSize int, nowNanos int64) []wire.StatPair {
	lat := s.latency.quantiles(0.50, 0.99)
	ckptAge := int64(applied - s.lastCheckpointed.Load())
	ps := []wire.StatPair{
		{Name: "applied_seq", Value: int64(applied)},
		{Name: "batches_applied", Value: s.batchesApplied.Load()},
		{Name: "batches_duplicate", Value: s.batchesDuplicate.Load()},
		{Name: "batches_invalid", Value: s.batchesInvalid.Load()},
		{Name: "batches_received", Value: s.batchesReceived.Load()},
		{Name: "checkpoint_age_batches", Value: ckptAge},
		{Name: "checkpoint_generation", Value: int64(s.checkpointGen.Load())},
		{Name: "checkpoint_last_seq", Value: int64(s.lastCheckpointed.Load())},
		{Name: "checkpoint_write_errors", Value: s.checkpointErrors.Load()},
		{Name: "checkpoints_written", Value: s.checkpoints.Load()},
		{Name: "conns_evicted", Value: s.connsEvicted.Load()},
		{Name: "conns_opened", Value: s.connsOpened.Load()},
		{Name: "deletes_applied", Value: s.deletesApplied.Load()},
		{Name: "faults_delayed", Value: s.faultsDelayed.Load()},
		{Name: "faults_dropped", Value: s.faultsDropped.Load()},
		{Name: "faults_duplicated", Value: s.faultsDuped.Load()},
		{Name: "inserts_applied", Value: s.insertsApplied.Load()},
		{Name: "latency_p50_nanos", Value: lat[0]},
		{Name: "latency_p99_nanos", Value: lat[1]},
		{Name: "loadshed_batches", Value: s.loadshedBatches.Load()},
		{Name: "matching_size", Value: int64(matchSize)},
		{Name: "updates_applied", Value: s.updatesApplied.Load()},
		{Name: "uptime_nanos", Value: nowNanos - s.startNanos},
	}
	for i := range s.queueHighWater {
		ps = append(ps, wire.StatPair{
			Name:  fmt.Sprintf("shard%03d_queue_highwater", i),
			Value: s.queueHighWater[i].Load(),
		})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
	return ps
}

// DumpStats renders stat pairs in the expvar-ish "name value" text form
// used by `matchd -stats`.
func DumpStats(pairs []wire.StatPair) string {
	var b strings.Builder
	for _, p := range pairs {
		fmt.Fprintf(&b, "%s %d\n", p.Name, p.Value)
	}
	return b.String()
}
