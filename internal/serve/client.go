package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/serve/wire"
)

// A ServerError is a typed ErrorResp surfaced by the client: the server
// refused a request (invalid update, crash-stop, shutdown, overload).
type ServerError struct {
	Code uint16
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("serve: server error %d: %s", e.Code, e.Msg)
}

// Crashed reports a CodeCrashed refusal — the fault plan crash-stopped
// the server, and the caller should restart it from a checkpoint.
func (e *ServerError) Crashed() bool { return e.Code == wire.CodeCrashed }

// Overloaded reports a CodeOverloaded refusal — the server's admission
// quota shed the batch. Retryable: back off and retransmit.
func (e *ServerError) Overloaded() bool { return e.Code == wire.CodeOverloaded }

// A TimeoutError reports an I/O deadline expiring on the client's
// connection: the server stopped reading or writing within the configured
// timeout. Unlike a hang, it is typed, bounded, and actionable.
type TimeoutError struct {
	Op           string // "read" or "write"
	TimeoutNanos int64
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("serve: %s timed out after %dns", e.Op, e.TimeoutNanos)
}

// Timeout marks the error as a timeout in the net.Error sense.
func (e *TimeoutError) Timeout() bool { return true }

// A RetryExhaustedError reports a SendUpdates call that ran out of
// retransmission passes with work still uncommitted. Committed/Total
// carry the progress made, so the caller can resume rather than restart.
type RetryExhaustedError struct {
	Committed uint64 // batches the server has applied
	Total     uint64 // batches the call set out to commit
	Passes    int    // retransmission passes consumed
}

func (e *RetryExhaustedError) Error() string {
	return fmt.Sprintf("serve: %d/%d batches committed after %d passes", e.Committed, e.Total, e.Passes)
}

// DefaultMaxPasses bounds SendUpdates retransmission rounds when
// ClientOptions.MaxPasses is zero. Under an independent drop rate p < 1
// the expected number of passes is O(log(total)/log(1/p)); a plan hostile
// enough to exhaust the bound is reported as a *RetryExhaustedError
// rather than looping forever.
const DefaultMaxPasses = 16

// Backoff is a bounded exponential backoff schedule with deterministic
// jitter: pass k pauses for BaseNanos·2^k, capped at MaxNanos, jittered
// to a seed-determined point in [d/2, d]. The zero value uses 1ms base
// and 512ms cap.
type Backoff struct {
	BaseNanos int64
	MaxNanos  int64
	Seed      uint64
}

// Pause returns the pause before retransmission pass k (k ≥ 1). The same
// (Backoff, k) always returns the same pause — deterministic jitter, not
// wall-clock or global-RNG jitter — so paced retries are replayable.
func (b Backoff) Pause(k int) int64 {
	base, max := b.BaseNanos, b.MaxNanos
	if base <= 0 {
		base = int64(time.Millisecond)
	}
	if max <= 0 {
		max = 512 * int64(time.Millisecond)
	}
	d := base
	for i := 1; i < k && d < max; i++ {
		d <<= 1
	}
	if d > max {
		d = max
	}
	// SplitMix64 over (seed, pass): full decorrelation between passes and
	// between clients with different seeds, zero shared state.
	z := b.Seed + 0x9e3779b97f4a7c15*uint64(k+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + int64(z%uint64(half+1))
}

// ClientOptions tune a client's liveness behavior. The zero value
// reproduces the historical defaults: no I/O deadlines, no pacing, and
// DefaultMaxPasses retransmission rounds.
type ClientOptions struct {
	// MaxPasses bounds SendUpdates retransmission rounds (0 →
	// DefaultMaxPasses, negative → exactly one pass).
	MaxPasses int
	// Backoff is the pause schedule between retransmission passes.
	Backoff Backoff
	// Sleep pauses for the given nanoseconds between retransmission
	// passes. nil disables pacing (retries run back to back) — the
	// library never calls time.Sleep itself; daemons inject it.
	Sleep func(nanos int64)
	// TimeoutNanos arms a deadline on every conn read and write; an
	// expired deadline surfaces as a typed *TimeoutError instead of a
	// hang. 0 disables deadlines. Requires NowNanos and a conn with
	// deadline support (any net.Conn).
	TimeoutNanos int64
	// NowNanos supplies the wall clock deadlines are computed against;
	// daemons inject time.Now().UnixNano. Required when TimeoutNanos > 0.
	NowNanos func() int64
}

// deadlineConn is the slice of net.Conn the client needs for I/O
// deadlines; net.Pipe ends implement it too.
type deadlineConn interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// Client speaks the matchd wire protocol over one connection. It is not
// safe for concurrent use; requests are strictly pipelined in order.
type Client struct {
	conn    io.ReadWriteCloser
	dl      deadlineConn // non-nil when opts arm deadlines
	opts    ClientOptions
	br      *bufio.Reader
	bw      *bufio.Writer
	welcome wire.Welcome
	applied uint64 // highest apply progress the server has reported
}

// Dial connects to a matchd server address and performs the handshake
// with default options.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, ClientOptions{})
}

// DialOptions connects to a matchd server address and performs the
// handshake with the given options.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial: %w", err)
	}
	return NewClientOptions(conn, opts)
}

// NewClient performs the Hello/Welcome handshake over an established
// connection (a socket or an in-process pipe end) with default options.
func NewClient(conn io.ReadWriteCloser) (*Client, error) {
	return NewClientOptions(conn, ClientOptions{})
}

// NewClientOptions performs the handshake with explicit options.
func NewClientOptions(conn io.ReadWriteCloser, opts ClientOptions) (*Client, error) {
	c := &Client{
		conn: conn,
		opts: opts,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}
	if opts.TimeoutNanos > 0 {
		if opts.NowNanos == nil {
			conn.Close()
			return nil, errors.New("serve: ClientOptions.TimeoutNanos requires NowNanos")
		}
		dl, ok := conn.(deadlineConn)
		if !ok {
			conn.Close()
			return nil, fmt.Errorf("serve: conn %T does not support deadlines", conn)
		}
		c.dl = dl
	}
	m, err := c.roundTrip(wire.Hello{})
	if err != nil {
		conn.Close()
		return nil, err
	}
	w, ok := m.(wire.Welcome)
	if !ok {
		conn.Close()
		return nil, fmt.Errorf("serve: handshake reply %T, want Welcome", m)
	}
	c.welcome = w
	c.applied = w.Applied
	return c, nil
}

// Welcome returns the server's handshake parameters.
func (c *Client) Welcome() wire.Welcome { return c.welcome }

// Applied returns the highest applied sequence the server has reported.
func (c *Client) Applied() uint64 { return c.applied }

// Close closes the connection without shutting the server down.
func (c *Client) Close() error { return c.conn.Close() }

// armRead starts the read-deadline clock for the next conn read; a no-op
// without configured deadlines.
func (c *Client) armRead() {
	if c.dl != nil {
		c.dl.SetReadDeadline(time.Unix(0, c.opts.NowNanos()+c.opts.TimeoutNanos))
	}
}

// armWrite starts the write-deadline clock for the next conn write.
func (c *Client) armWrite() {
	if c.dl != nil {
		c.dl.SetWriteDeadline(time.Unix(0, c.opts.NowNanos()+c.opts.TimeoutNanos))
	}
}

// wrapIO converts an expired-deadline error into a typed *TimeoutError
// and tags everything else with the operation.
func (c *Client) wrapIO(op string, err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return &TimeoutError{Op: op, TimeoutNanos: c.opts.TimeoutNanos}
	}
	return fmt.Errorf("serve: %s: %w", op, err)
}

func (c *Client) send(m wire.Msg) error {
	if err := wire.WriteFrame(c.bw, m); err != nil {
		return c.wrapIO("send", err)
	}
	return nil
}

// flushConn drains the buffered writer to the conn under a write deadline.
func (c *Client) flushConn() error {
	c.armWrite()
	if err := c.bw.Flush(); err != nil {
		return c.wrapIO("write", err)
	}
	return nil
}

func (c *Client) recv() (wire.Msg, error) {
	c.armRead()
	m, err := wire.ReadFrame(c.br)
	if err != nil {
		return nil, c.wrapIO("read", err)
	}
	if e, ok := m.(wire.ErrorResp); ok {
		return nil, &ServerError{Code: e.Code, Msg: e.Msg}
	}
	return m, nil
}

func (c *Client) roundTrip(m wire.Msg) (wire.Msg, error) {
	if err := c.send(m); err != nil {
		return nil, err
	}
	if err := c.flushConn(); err != nil {
		return nil, err
	}
	return c.recv()
}

// Flush is a commit barrier: the server answers only after every batch it
// accepted before the flush has been applied (or discarded as a duplicate
// or fault casualty), so the returned sequence is the committed prefix at
// the barrier, never a stale read.
func (c *Client) Flush() (uint64, error) {
	m, err := c.roundTrip(wire.FlushReq{})
	if err != nil {
		return 0, err
	}
	f, ok := m.(wire.FlushResp)
	if !ok {
		return 0, fmt.Errorf("serve: flush reply %T, want FlushResp", m)
	}
	if f.Applied > c.applied {
		c.applied = f.Applied
	}
	return f.Applied, nil
}

// sendWindow is how many batch frames SendUpdates keeps in flight before
// draining acknowledgements.
const sendWindow = 64

// SendUpdates streams the update sequence to the server in batches of
// batchSize, pipelined sendWindow batches deep, and retransmits until the
// server has committed everything. Batch sequence numbers are assigned
// from position — sequence k carries updates [(k-1)·batchSize, …) — so a
// replay after reconnecting to a restored server sends exactly the suffix
// the checkpoint had not yet absorbed.
//
// Retransmission passes are bounded (ClientOptions.MaxPasses) and paced
// by bounded exponential backoff with deterministic jitter
// (ClientOptions.Backoff/Sleep), replacing unbounded hot retries. A
// server overload shed (CodeOverloaded) is retryable: the pass stops
// sending, the pause runs, and the next pass resumes from the committed
// prefix. Exhausting the pass budget returns a *RetryExhaustedError with
// the progress made.
func (c *Client) SendUpdates(ups []wire.Update, batchSize int) error {
	if batchSize <= 0 {
		batchSize = 256
	}
	maxPasses := c.opts.MaxPasses
	if maxPasses == 0 {
		maxPasses = DefaultMaxPasses
	}
	total := uint64((len(ups) + batchSize - 1) / batchSize)
	batch := func(seq uint64) wire.Batch {
		lo := (seq - 1) * uint64(batchSize)
		hi := lo + uint64(batchSize)
		if hi > uint64(len(ups)) {
			hi = uint64(len(ups))
		}
		return wire.Batch{Seq: seq, Updates: ups[lo:hi]}
	}
	for pass := 0; ; pass++ {
		if _, err := c.Flush(); err != nil {
			return err
		}
		if c.applied >= total {
			return nil
		}
		if pass >= maxPasses {
			return &RetryExhaustedError{Committed: c.applied, Total: total, Passes: pass}
		}
		if pass > 0 && c.opts.Sleep != nil {
			c.opts.Sleep(c.opts.Backoff.Pause(pass))
		}
		outstanding, shed := 0, false
		drain := func() error {
			for ; outstanding > 0; outstanding-- {
				m, err := c.recv()
				if err != nil {
					var se *ServerError
					if errors.As(err, &se) && se.Overloaded() {
						// Admission quota shed this batch; the reply slot is
						// consumed, the batch retries next pass after backoff.
						shed = true
						continue
					}
					return err
				}
				a, ok := m.(wire.Ack)
				if !ok {
					return fmt.Errorf("serve: batch reply %T, want Ack", m)
				}
				if a.Applied > c.applied {
					c.applied = a.Applied
				}
			}
			return nil
		}
		for seq := c.applied + 1; seq <= total && !shed; seq++ {
			if err := c.send(batch(seq)); err != nil {
				return err
			}
			outstanding++
			if outstanding == sendWindow {
				if err := c.flushConn(); err != nil {
					return err
				}
				if err := drain(); err != nil {
					return err
				}
			}
		}
		if err := c.flushConn(); err != nil {
			return err
		}
		if err := drain(); err != nil {
			return err
		}
	}
}

// Matching fetches the server's current matching.
func (c *Client) Matching() ([]int32, int, error) {
	m, err := c.roundTrip(wire.MatchReq{})
	if err != nil {
		return nil, 0, err
	}
	r, ok := m.(wire.MatchResp)
	if !ok {
		return nil, 0, fmt.Errorf("serve: match reply %T, want MatchResp", m)
	}
	return r.Mates, int(r.Size), nil
}

// Stats fetches the server's operational counters.
func (c *Client) Stats() ([]wire.StatPair, error) {
	m, err := c.roundTrip(wire.StatsReq{})
	if err != nil {
		return nil, err
	}
	r, ok := m.(wire.StatsResp)
	if !ok {
		return nil, fmt.Errorf("serve: stats reply %T, want StatsResp", m)
	}
	return r.Pairs, nil
}

// Checkpoint asks the server to checkpoint now; it returns the committed
// sequence the checkpoint captured and the bytes written to disk.
func (c *Client) Checkpoint() (uint64, int, error) {
	m, err := c.roundTrip(wire.CheckpointReq{})
	if err != nil {
		return 0, 0, err
	}
	r, ok := m.(wire.CheckpointResp)
	if !ok {
		return 0, 0, fmt.Errorf("serve: checkpoint reply %T, want CheckpointResp", m)
	}
	return r.Seq, int(r.Bytes), nil
}

// Quit asks the server to drain and shut down, then closes the
// connection. It returns the server's final committed sequence.
func (c *Client) Quit() (uint64, error) {
	m, err := c.roundTrip(wire.Quit{})
	if err != nil {
		c.conn.Close()
		return 0, err
	}
	f, ok := m.(wire.FlushResp)
	if !ok {
		c.conn.Close()
		return 0, fmt.Errorf("serve: quit reply %T, want FlushResp", m)
	}
	c.conn.Close()
	return f.Applied, nil
}
