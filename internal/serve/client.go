package serve

import (
	"bufio"
	"fmt"
	"io"
	"net"

	"repro/internal/serve/wire"
)

// A ServerError is a typed ErrorResp surfaced by the client: the server
// refused a request (invalid update, crash-stop, shutdown).
type ServerError struct {
	Code uint16
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("serve: server error %d: %s", e.Code, e.Msg)
}

// Crashed reports a CodeCrashed refusal — the fault plan crash-stopped
// the server, and the caller should restart it from a checkpoint.
func (e *ServerError) Crashed() bool { return e.Code == wire.CodeCrashed }

// Client speaks the matchd wire protocol over one connection. It is not
// safe for concurrent use; requests are strictly pipelined in order.
type Client struct {
	conn    io.ReadWriteCloser
	br      *bufio.Reader
	bw      *bufio.Writer
	welcome wire.Welcome
	applied uint64 // highest apply progress the server has reported
}

// Dial connects to a matchd server address and performs the handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial: %w", err)
	}
	return NewClient(conn)
}

// NewClient performs the Hello/Welcome handshake over an established
// connection (a socket or an in-process pipe end).
func NewClient(conn io.ReadWriteCloser) (*Client, error) {
	c := &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}
	m, err := c.roundTrip(wire.Hello{})
	if err != nil {
		conn.Close()
		return nil, err
	}
	w, ok := m.(wire.Welcome)
	if !ok {
		conn.Close()
		return nil, fmt.Errorf("serve: handshake reply %T, want Welcome", m)
	}
	c.welcome = w
	c.applied = w.Applied
	return c, nil
}

// Welcome returns the server's handshake parameters.
func (c *Client) Welcome() wire.Welcome { return c.welcome }

// Applied returns the highest applied sequence the server has reported.
func (c *Client) Applied() uint64 { return c.applied }

// Close closes the connection without shutting the server down.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) send(m wire.Msg) error {
	if err := wire.WriteFrame(c.bw, m); err != nil {
		return fmt.Errorf("serve: send: %w", err)
	}
	return nil
}

func (c *Client) recv() (wire.Msg, error) {
	m, err := wire.ReadFrame(c.br)
	if err != nil {
		return nil, fmt.Errorf("serve: recv: %w", err)
	}
	if e, ok := m.(wire.ErrorResp); ok {
		return nil, &ServerError{Code: e.Code, Msg: e.Msg}
	}
	return m, nil
}

func (c *Client) roundTrip(m wire.Msg) (wire.Msg, error) {
	if err := c.send(m); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, fmt.Errorf("serve: flush: %w", err)
	}
	return c.recv()
}

// Flush is a commit barrier: the server answers only after every batch it
// accepted before the flush has been applied (or discarded as a duplicate
// or fault casualty), so the returned sequence is the committed prefix at
// the barrier, never a stale read.
func (c *Client) Flush() (uint64, error) {
	m, err := c.roundTrip(wire.FlushReq{})
	if err != nil {
		return 0, err
	}
	f, ok := m.(wire.FlushResp)
	if !ok {
		return 0, fmt.Errorf("serve: flush reply %T, want FlushResp", m)
	}
	if f.Applied > c.applied {
		c.applied = f.Applied
	}
	return f.Applied, nil
}

// sendWindow is how many batch frames SendUpdates keeps in flight before
// draining acknowledgements.
const sendWindow = 64

// maxSendPasses bounds retransmission rounds. Under an independent drop
// rate p < 1 the expected number of passes is O(log(total)/log(1/p)); a
// plan hostile enough to exhaust 64 passes is reported as an error rather
// than looping forever.
const maxSendPasses = 64

// SendUpdates streams the update sequence to the server in batches of
// batchSize, pipelined sendWindow batches deep, and retransmits until the
// server has committed everything. Batch sequence numbers are assigned
// from position — sequence k carries updates [(k-1)·batchSize, …) — so a
// replay after reconnecting to a restored server sends exactly the suffix
// the checkpoint had not yet absorbed.
func (c *Client) SendUpdates(ups []wire.Update, batchSize int) error {
	if batchSize <= 0 {
		batchSize = 256
	}
	total := uint64((len(ups) + batchSize - 1) / batchSize)
	batch := func(seq uint64) wire.Batch {
		lo := (seq - 1) * uint64(batchSize)
		hi := lo + uint64(batchSize)
		if hi > uint64(len(ups)) {
			hi = uint64(len(ups))
		}
		return wire.Batch{Seq: seq, Updates: ups[lo:hi]}
	}
	for pass := 0; ; pass++ {
		if _, err := c.Flush(); err != nil {
			return err
		}
		if c.applied >= total {
			return nil
		}
		if pass >= maxSendPasses {
			return fmt.Errorf("serve: %d/%d batches committed after %d passes", c.applied, total, pass)
		}
		outstanding := 0
		drain := func() error {
			for ; outstanding > 0; outstanding-- {
				m, err := c.recv()
				if err != nil {
					return err
				}
				a, ok := m.(wire.Ack)
				if !ok {
					return fmt.Errorf("serve: batch reply %T, want Ack", m)
				}
				if a.Applied > c.applied {
					c.applied = a.Applied
				}
			}
			return nil
		}
		for seq := c.applied + 1; seq <= total; seq++ {
			if err := c.send(batch(seq)); err != nil {
				return err
			}
			outstanding++
			if outstanding == sendWindow {
				if err := c.bw.Flush(); err != nil {
					return fmt.Errorf("serve: flush: %w", err)
				}
				if err := drain(); err != nil {
					return err
				}
			}
		}
		if err := c.bw.Flush(); err != nil {
			return fmt.Errorf("serve: flush: %w", err)
		}
		if err := drain(); err != nil {
			return err
		}
	}
}

// Matching fetches the server's current matching.
func (c *Client) Matching() ([]int32, int, error) {
	m, err := c.roundTrip(wire.MatchReq{})
	if err != nil {
		return nil, 0, err
	}
	r, ok := m.(wire.MatchResp)
	if !ok {
		return nil, 0, fmt.Errorf("serve: match reply %T, want MatchResp", m)
	}
	return r.Mates, int(r.Size), nil
}

// Stats fetches the server's operational counters.
func (c *Client) Stats() ([]wire.StatPair, error) {
	m, err := c.roundTrip(wire.StatsReq{})
	if err != nil {
		return nil, err
	}
	r, ok := m.(wire.StatsResp)
	if !ok {
		return nil, fmt.Errorf("serve: stats reply %T, want StatsResp", m)
	}
	return r.Pairs, nil
}

// Checkpoint asks the server to checkpoint now; it returns the committed
// sequence the checkpoint captured and the bytes written to disk.
func (c *Client) Checkpoint() (uint64, int, error) {
	m, err := c.roundTrip(wire.CheckpointReq{})
	if err != nil {
		return 0, 0, err
	}
	r, ok := m.(wire.CheckpointResp)
	if !ok {
		return 0, 0, fmt.Errorf("serve: checkpoint reply %T, want CheckpointResp", m)
	}
	return r.Seq, int(r.Bytes), nil
}

// Quit asks the server to drain and shut down, then closes the
// connection. It returns the server's final committed sequence.
func (c *Client) Quit() (uint64, error) {
	m, err := c.roundTrip(wire.Quit{})
	if err != nil {
		c.conn.Close()
		return 0, err
	}
	f, ok := m.(wire.FlushResp)
	if !ok {
		c.conn.Close()
		return 0, fmt.Errorf("serve: quit reply %T, want FlushResp", m)
	}
	c.conn.Close()
	return f.Applied, nil
}
