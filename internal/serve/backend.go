package serve

import (
	"fmt"

	"repro/internal/dynmatch"
	"repro/internal/matching"
)

// Matcher is the dynamic-matching state machine a server shard-pipeline
// feeds: the serving counterpart of the PR-6 core.Sparsifier registry. A
// Matcher must be deterministic (bit-identical state for a fixed update
// sequence) and checkpointable (MarshalCheckpoint bytes restore through
// the backend's Restore to a maintainer that replays bit-identically) —
// the two properties the replay-conformance and crash-restart suites pin.
type Matcher interface {
	N() int
	Insert(u, v int32) bool
	Delete(u, v int32) bool
	Matching() *matching.Matching
	MarshalCheckpoint() ([]byte, error)
}

// Backend names a dynamic-matching implementation the server can host.
type Backend struct {
	// Name is the stable identifier used by the -backend flag, checkpoint
	// headers, and Welcome frames.
	Name string
	// Guarantee states the approximation guarantee in one line.
	Guarantee string
	// New creates a fresh matcher over an empty graph on n vertices.
	New func(n, beta int, eps float64, seed uint64) (Matcher, error)
	// Restore rebuilds a matcher from MarshalCheckpoint bytes.
	Restore func(payload []byte) (Matcher, error)
}

// gdeltaMatcher adapts dynmatch.Maintainer (the Theorem 3.5 G_Δ pipeline,
// worst-case-budgeted, adaptive-safe) to the serving interface.
type gdeltaMatcher struct {
	*dynmatch.Maintainer
}

func (m gdeltaMatcher) MarshalCheckpoint() ([]byte, error) {
	return m.Snapshot().MarshalBinary()
}

// edcsMatcher adapts dynmatch.EDCSWindowed (EDCS windowed recompute,
// arbitrary graphs, amortized) to the serving interface.
type edcsMatcher struct {
	*dynmatch.EDCSWindowed
}

func (m edcsMatcher) MarshalCheckpoint() ([]byte, error) {
	return m.MarshalBinary()
}

// validateParams turns the panic contract of the dynmatch constructors
// (invariant violations on programmer-supplied options) into errors for
// the server path, where parameters arrive from flags and checkpoints.
func validateParams(n, beta int, eps float64) error {
	if n < 0 {
		return fmt.Errorf("serve: negative vertex count %d", n)
	}
	if beta < 1 {
		return fmt.Errorf("serve: beta %d, want >= 1", beta)
	}
	if !(eps > 0 && eps < 1) {
		return fmt.Errorf("serve: eps %v outside (0,1)", eps)
	}
	return nil
}

// Backends returns the registered backends in name order.
func Backends() []Backend {
	return []Backend{
		{
			Name:      "edcs",
			Guarantee: "3/2+O(λ) on arbitrary graphs (EDCS windowed recompute, amortized)",
			New: func(n, beta int, eps float64, seed uint64) (Matcher, error) {
				if err := validateParams(n, beta, eps); err != nil {
					return nil, err
				}
				return edcsMatcher{dynmatch.NewEDCSWindowed(n, eps, seed)}, nil
			},
			Restore: func(payload []byte) (Matcher, error) {
				mt, err := dynmatch.RestoreEDCSWindowed(payload)
				if err != nil {
					return nil, err
				}
				return edcsMatcher{mt}, nil
			},
		},
		{
			Name:      "gdelta",
			Guarantee: "(1+ε) w.h.p. on graphs of neighborhood independence ≤ β (Theorem 3.5, worst-case budgeted)",
			New: func(n, beta int, eps float64, seed uint64) (Matcher, error) {
				if err := validateParams(n, beta, eps); err != nil {
					return nil, err
				}
				return gdeltaMatcher{dynmatch.New(n, dynmatch.Options{Beta: beta, Eps: eps}, seed)}, nil
			},
			Restore: func(payload []byte) (Matcher, error) {
				c, err := dynmatch.UnmarshalCheckpoint(payload)
				if err != nil {
					return nil, err
				}
				mt, err := dynmatch.Restore(c)
				if err != nil {
					return nil, err
				}
				return gdeltaMatcher{mt}, nil
			},
		},
	}
}

// BackendNames returns the registered backend names in order.
func BackendNames() []string {
	bs := Backends()
	names := make([]string, len(bs))
	for i, b := range bs {
		names[i] = b.Name
	}
	return names
}

// DefaultBackend is the backend an empty -backend flag selects.
const DefaultBackend = "gdelta"

// BackendByName resolves a backend name; "" means DefaultBackend.
func BackendByName(name string) (Backend, error) {
	if name == "" {
		name = DefaultBackend
	}
	for _, b := range Backends() {
		if b.Name == name {
			return b, nil
		}
	}
	return Backend{}, fmt.Errorf("serve: unknown backend %q (have %v)", name, BackendNames())
}
