package serve_test

import (
	"fmt"
	"net"
	"slices"
	"testing"

	"repro/internal/cli"
	"repro/internal/dynmatch"
	"repro/internal/serve"
	"repro/internal/serve/wire"
)

// testParams are the matcher parameters every conformance run shares; the
// server and the direct replay must agree on all of them for bit-identity
// to be meaningful.
const (
	testBeta = 2
	testEps  = 0.3
	testSeed = 7
)

// startServer launches a server on a loopback listener and returns it with
// its address. Loopback sockets (not net.Pipe) so that pipelined
// request/response traffic has kernel buffering, exactly as in production.
func startServer(t *testing.T, cfg serve.Config) (*serve.Server, string) {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, listen(t, s)
}

func listen(t *testing.T, s *serve.Server) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	t.Cleanup(s.Shutdown)
	return l.Addr().String()
}

func dial(t *testing.T, addr string) *serve.Client {
	t.Helper()
	c, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// testTrace generates the shared conformance workload: a bounded-diversity
// load plus churn, the same generator every other tool uses.
func testTrace(t *testing.T, n int, avgDeg float64, churn int, seed uint64) ([]dynmatch.Update, []wire.Update) {
	t.Helper()
	tr, err := cli.MakeTrace("diversity2", n, avgDeg, churn, seed)
	if err != nil {
		t.Fatal(err)
	}
	ups := make([]wire.Update, len(tr.Updates))
	for i, u := range tr.Updates {
		ups[i] = wire.Update{Insert: u.Insert, U: u.U, V: u.V}
	}
	return tr.Updates, ups
}

// directReplay applies the updates to a freshly built backend matcher with
// the same parameters the server uses — the single-threaded ground truth.
func directReplay(t *testing.T, backend string, n int, updates []dynmatch.Update) serve.Matcher {
	t.Helper()
	b, err := serve.BackendByName(backend)
	if err != nil {
		t.Fatal(err)
	}
	m, err := b.New(n, testBeta, testEps, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range updates {
		if u.Insert {
			m.Insert(u.U, u.V)
		} else {
			m.Delete(u.U, u.V)
		}
	}
	return m
}

// TestReplayConformance is the tentpole contract: for every backend and
// every shard count, a server driven through the wire protocol ends with a
// matching BIT-IDENTICAL to a direct single-threaded replay of the same
// update sequence. Sharding, batching, pipelining, and the reorder buffer
// must all be invisible in the final state.
func TestReplayConformance(t *testing.T) {
	const n = 240
	updates, ups := testTrace(t, n, 12, 1500, 11)
	for _, backend := range serve.BackendNames() {
		want := directReplay(t, backend, n, updates)
		wantMates := want.Matching().Mates()
		for _, shards := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/shards=%d", backend, shards), func(t *testing.T) {
				_, addr := startServer(t, serve.Config{
					N: n, Shards: shards, Beta: testBeta, Eps: testEps,
					Seed: testSeed, Backend: backend,
				})
				c := dial(t, addr)
				if got := c.Welcome(); got.Backend != backend || int(got.N) != n || int(got.Shards) != shards {
					t.Fatalf("welcome = %+v", got)
				}
				// An awkward batch size, so batch boundaries never align
				// with shard or window boundaries.
				if err := c.SendUpdates(ups, 37); err != nil {
					t.Fatal(err)
				}
				mates, size, err := c.Matching()
				if err != nil {
					t.Fatal(err)
				}
				if size != want.Matching().Size() {
					t.Fatalf("served matching size %d, direct replay %d", size, want.Matching().Size())
				}
				if !slices.Equal(mates, wantMates) {
					t.Fatalf("served matching is not bit-identical to the direct replay")
				}
			})
		}
	}
}

// TestConformanceAcrossShardCounts pins shard-count invariance directly:
// every shard count yields byte-equal checkpoints, not merely equal
// matchings.
func TestConformanceAcrossShardCounts(t *testing.T) {
	const n = 160
	_, ups := testTrace(t, n, 10, 800, 29)
	var ref []byte
	for _, shards := range []int{1, 2, 8} {
		s, addr := startServer(t, serve.Config{
			N: n, Shards: shards, Beta: testBeta, Eps: testEps, Seed: testSeed,
		})
		c := dial(t, addr)
		if err := c.SendUpdates(ups, 64); err != nil {
			t.Fatal(err)
		}
		ckpt, _, err := s.CheckpointNow()
		if err != nil {
			t.Fatal(err)
		}
		b, err := ckpt.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = b
		} else if !slices.Equal(ref, b) {
			t.Fatalf("shards=%d: checkpoint bytes differ from shards=1", shards)
		}
	}
}
