package serve

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/faults"
)

// Server checkpoint format (version 1): a small header binding the wire
// sequence number and server parameters to an opaque backend payload
// (dynmatch's own checkpoint encoding). Like every codec in this repo the
// encoding is canonical — fixed-width big-endian, no maps, no padding.
//
// Layout:
//
//	magic   4 bytes "SMCP"
//	version 1 byte
//	applied u64    highest batch sequence folded into the payload
//	n       u64    vertex count
//	beta    i64    neighborhood-independence bound (gdelta backend)
//	eps     f64
//	seed    u64
//	backend u16 length + bytes
//	payload u32 length + bytes (backend-specific matcher checkpoint)
const (
	serverCheckpointMagic = "SMCP"
	// CheckpointVersion is the server checkpoint format version.
	CheckpointVersion = 1
)

// maxBackendName bounds the backend-name field length.
const maxBackendName = 1 << 8

// maxCheckpointPayload bounds the matcher payload a decoder will allocate
// for (defense against length-field allocation bombs on corrupt files).
const maxCheckpointPayload = 1 << 31

// A CheckpointError reports a server checkpoint that cannot be decoded:
// truncated, corrupt, or version-mismatched.
type CheckpointError struct {
	Offset int
	Why    string
}

func (e *CheckpointError) Error() string {
	return fmt.Sprintf("serve: checkpoint byte %d: %s", e.Offset, e.Why)
}

// A CheckpointVersionError reports a checkpoint written by an incompatible
// server checkpoint format version.
type CheckpointVersionError struct {
	Got byte
}

func (e *CheckpointVersionError) Error() string {
	return fmt.Sprintf("serve: checkpoint format version %d, want %d", e.Got, CheckpointVersion)
}

// Checkpoint is a durable snapshot of a server: the applied wire sequence
// number, the construction parameters, and the backend matcher's own
// checkpoint bytes. NewFromCheckpoint rebuilds a server that continues the
// update sequence bit-identically.
type Checkpoint struct {
	Applied uint64
	N       int
	Beta    int
	Eps     float64
	Seed    uint64
	Backend string
	Payload []byte
}

// MarshalBinary serializes the checkpoint canonically.
func (c *Checkpoint) MarshalBinary() ([]byte, error) {
	if len(c.Backend) > maxBackendName {
		return nil, &CheckpointError{Why: fmt.Sprintf("backend name %d bytes exceeds %d", len(c.Backend), maxBackendName)}
	}
	if len(c.Payload) > maxCheckpointPayload {
		return nil, &CheckpointError{Why: fmt.Sprintf("payload %d bytes exceeds %d", len(c.Payload), maxCheckpointPayload)}
	}
	dst := make([]byte, 0, 64+len(c.Backend)+len(c.Payload))
	dst = append(dst, serverCheckpointMagic...)
	dst = append(dst, CheckpointVersion)
	dst = binary.BigEndian.AppendUint64(dst, c.Applied)
	dst = binary.BigEndian.AppendUint64(dst, uint64(c.N))
	dst = binary.BigEndian.AppendUint64(dst, uint64(int64(c.Beta)))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(c.Eps))
	dst = binary.BigEndian.AppendUint64(dst, c.Seed)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(c.Backend)))
	dst = append(dst, c.Backend...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(c.Payload)))
	dst = append(dst, c.Payload...)
	return dst, nil
}

// ckpReader mirrors the dynmatch checkpoint reader: offset-tracked decoding
// with a sticky typed error.
type ckpReader struct {
	b   []byte
	off int
	err error
}

func (r *ckpReader) fail(why string) {
	if r.err == nil {
		r.err = &CheckpointError{Offset: r.off, Why: why}
	}
}

func (r *ckpReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b)-r.off < n {
		r.fail(fmt.Sprintf("truncated: need %d bytes, have %d", n, len(r.b)-r.off))
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *ckpReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// UnmarshalServerCheckpoint decodes MarshalBinary bytes. Errors are typed:
// *CheckpointError for damage, *CheckpointVersionError for a version skew;
// never a panic.
func UnmarshalServerCheckpoint(b []byte) (*Checkpoint, error) {
	r := &ckpReader{b: b}
	magic := r.take(len(serverCheckpointMagic))
	if r.err != nil {
		return nil, r.err
	}
	if string(magic) != serverCheckpointMagic {
		return nil, &CheckpointError{Offset: 0, Why: fmt.Sprintf("bad magic %q, want %q", magic, serverCheckpointMagic)}
	}
	ver := r.take(1)
	if r.err != nil {
		return nil, r.err
	}
	if ver[0] != CheckpointVersion {
		return nil, &CheckpointVersionError{Got: ver[0]}
	}
	c := &Checkpoint{}
	c.Applied = r.u64()
	n := r.u64()
	beta := int64(r.u64())
	epsBits := r.u64()
	c.Seed = r.u64()
	if r.err != nil {
		return nil, r.err
	}
	if n > math.MaxInt32 {
		return nil, &CheckpointError{Offset: r.off, Why: fmt.Sprintf("vertex count %d exceeds %d", n, math.MaxInt32)}
	}
	c.N = int(n)
	if beta < 0 || beta > math.MaxInt32 {
		return nil, &CheckpointError{Offset: r.off, Why: fmt.Sprintf("beta %d out of range", beta)}
	}
	c.Beta = int(beta)
	c.Eps = math.Float64frombits(epsBits)
	nameLen := 0
	if b2 := r.take(2); b2 != nil {
		nameLen = int(binary.BigEndian.Uint16(b2))
	}
	if r.err == nil && nameLen > maxBackendName {
		r.fail(fmt.Sprintf("backend name %d bytes exceeds %d", nameLen, maxBackendName))
	}
	if name := r.take(nameLen); name != nil {
		c.Backend = string(name)
	}
	payloadLen := uint32(0)
	if b4 := r.take(4); b4 != nil {
		payloadLen = binary.BigEndian.Uint32(b4)
	}
	if r.err == nil && int64(payloadLen) > int64(len(r.b)-r.off) {
		r.fail(fmt.Sprintf("payload length %d exceeds remaining %d bytes", payloadLen, len(r.b)-r.off))
	}
	if payload := r.take(int(payloadLen)); payload != nil {
		c.Payload = append([]byte(nil), payload...)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, &CheckpointError{Offset: r.off, Why: fmt.Sprintf("%d trailing bytes", len(b)-r.off)}
	}
	return c, nil
}

// WriteCheckpointFile durably writes one bare (un-enveloped) checkpoint
// file via the full durability protocol — temp file → write → fsync →
// rename → fsync(dir) — so a crash at any point leaves either the old
// complete file or the new complete file, both on stable storage.
// Generational stores (see durable.go) are the preferred interface; this
// single-file form remains for tools that exchange one checkpoint.
func WriteCheckpointFile(path string, c *Checkpoint) (int, error) {
	b, err := c.MarshalBinary()
	if err != nil {
		return 0, err
	}
	fs := faults.OSFS{}
	tmp := faults.TempName(path)
	f, err := fs.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("serve: checkpoint create: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return 0, fmt.Errorf("serve: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return 0, fmt.Errorf("serve: checkpoint fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, fmt.Errorf("serve: checkpoint close: %w", err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		return 0, fmt.Errorf("serve: checkpoint rename: %w", err)
	}
	if err := fs.SyncDir(filepath.Dir(path)); err != nil {
		return 0, fmt.Errorf("serve: checkpoint dir fsync: %w", err)
	}
	return len(b), nil
}

// ReadCheckpointFile loads and decodes a checkpoint file.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint read: %w", err)
	}
	return UnmarshalServerCheckpoint(b)
}
