// Package wire is the length-prefixed binary protocol of the matchd
// daemon (cmd/matchd, internal/serve). Frames carry edge-update batches,
// cumulative acks, operational stats, checkpoint control, and matching
// snapshots between a client and a server.
//
// Framing: every message is
//
//	magic   2 bytes  'S' 'M'
//	version 1 byte   (currently 1)
//	type    1 byte
//	length  4 bytes  big-endian payload length
//	payload length bytes
//
// The encoding is canonical and deterministic: fixed-width big-endian
// integers, length-prefixed strings, no maps, no padding. For every valid
// message x, Decode(Encode(x)) == x, and for every byte string b accepted
// by Decode, Encode(Decode(b)) is exactly the consumed prefix of b — both
// properties are pinned by FuzzWireRoundTrip. Malformed input yields a
// typed error (*FormatError, *VersionError, ErrBadMagic, ErrFrameTooBig),
// never a panic and never an allocation proportional to a length field
// that the payload cannot back.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol constants.
const (
	Version = 1 // bumped on incompatible frame layout changes

	magic0 = 'S'
	magic1 = 'M'

	headerLen = 8

	// MaxPayload bounds a frame's payload; ReadFrame refuses larger
	// length prefixes before allocating.
	MaxPayload = 1 << 26

	// MaxBatchUpdates bounds the updates in one Batch frame.
	MaxBatchUpdates = 1 << 20

	// maxString bounds length-prefixed strings (16-bit length).
	maxString = 1<<16 - 1

	// statPairMinBytes is the smallest encoding of one StatPair: a 2-byte
	// name length (empty name) plus an 8-byte value. A claimed pair count
	// must fit the remaining payload at this rate before anything is
	// allocated for it.
	statPairMinBytes = 10
)

// Frame types.
const (
	TypeHello byte = iota + 1
	TypeWelcome
	TypeBatch
	TypeAck
	TypeStatsReq
	TypeStatsResp
	TypeMatchReq
	TypeMatchResp
	TypeCheckpointReq
	TypeCheckpointResp
	TypeFlushReq
	TypeFlushResp
	TypeError
	TypeQuit

	typeMax = TypeQuit
)

// Error codes carried by Error frames.
const (
	CodeInvalidUpdate uint16 = iota + 1
	CodeCrashed
	CodeShuttingDown
	CodeInternal
	// CodeOverloaded rejects a batch shed by the server's admission quota:
	// too many unapplied sequences are already in flight. Retryable — the
	// client should back off and retransmit.
	CodeOverloaded
)

// ErrBadMagic reports a frame that does not start with the protocol magic.
var ErrBadMagic = errors.New("wire: bad frame magic")

// ErrFrameTooBig reports a length prefix exceeding MaxPayload.
var ErrFrameTooBig = errors.New("wire: frame exceeds MaxPayload")

// A VersionError reports a frame encoded with an unsupported protocol
// version.
type VersionError struct {
	Got byte
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("wire: protocol version %d, want %d", e.Got, Version)
}

// A FormatError reports a structurally malformed frame payload: a
// truncated field, an out-of-range value, or trailing garbage.
type FormatError struct {
	Type  byte   // frame type, 0 if the header itself is malformed
	Field string // the field being decoded when the error was found
	Why   string
}

func (e *FormatError) Error() string {
	return fmt.Sprintf("wire: frame type %d: field %s: %s", e.Type, e.Field, e.Why)
}

// Msg is one protocol message. Concrete types: Hello, Welcome, Batch, Ack,
// StatsReq, StatsResp, MatchReq, MatchResp, CheckpointReq, CheckpointResp,
// FlushReq, FlushResp, ErrorResp, Quit.
type Msg interface {
	frameType() byte
}

// Hello opens a session; the server answers with Welcome.
type Hello struct{}

// Welcome announces the server's identity and resume point: Applied is the
// last batch sequence number whose updates are reflected in the matching,
// so a resuming client starts sending at Applied+1.
type Welcome struct {
	Applied uint64
	N       uint32
	Shards  uint32
	Backend string
}

// Update is one edge insertion or deletion.
type Update struct {
	Insert bool
	U, V   int32
}

// Batch is a sequenced group of updates. Sequence numbers start at 1 and
// increase by 1 per batch; the server applies batches in sequence order
// exactly once, so retransmitted or duplicated batches are harmless.
type Batch struct {
	Seq     uint64
	Updates []Update
}

// Ack confirms receipt of the batch with the given Seq and reports the
// cumulative Applied sequence number (all batches ≤ Applied are applied).
type Ack struct {
	Seq     uint64
	Applied uint64
}

// StatsReq asks for the server's operational counters.
type StatsReq struct{}

// StatPair is one named counter; StatsResp carries them sorted strictly
// ascending by name (the canonical order, enforced by Decode).
type StatPair struct {
	Name  string
	Value int64
}

// StatsResp returns the operational counters.
type StatsResp struct {
	Pairs []StatPair
}

// MatchReq asks for a snapshot of the maintained matching.
type MatchReq struct{}

// MatchResp is a matching snapshot: Mates[v] is v's partner or -1.
type MatchResp struct {
	Size  int32
	Mates []int32
}

// CheckpointReq forces a checkpoint now.
type CheckpointReq struct{}

// CheckpointResp reports the applied sequence number the checkpoint
// captured and the serialized checkpoint size in bytes.
type CheckpointResp struct {
	Seq   uint64
	Bytes uint32
}

// FlushReq is a commit barrier: the server answers only after every batch
// it accepted before this request has been applied or discarded (as a
// duplicate or a fault casualty). The reply therefore reports the
// committed prefix at the barrier — pipelined senders use it to pace
// retransmission to the applier instead of busy-polling.
type FlushReq struct{}

// FlushResp carries the cumulative applied sequence number.
type FlushResp struct {
	Applied uint64
}

// ErrorResp reports a request the server refused.
type ErrorResp struct {
	Code uint16
	Msg  string
}

// Quit asks the server to shut down gracefully after answering with a
// FlushResp.
type Quit struct{}

func (Hello) frameType() byte          { return TypeHello }
func (Welcome) frameType() byte        { return TypeWelcome }
func (Batch) frameType() byte          { return TypeBatch }
func (Ack) frameType() byte            { return TypeAck }
func (StatsReq) frameType() byte       { return TypeStatsReq }
func (StatsResp) frameType() byte      { return TypeStatsResp }
func (MatchReq) frameType() byte       { return TypeMatchReq }
func (MatchResp) frameType() byte      { return TypeMatchResp }
func (CheckpointReq) frameType() byte  { return TypeCheckpointReq }
func (CheckpointResp) frameType() byte { return TypeCheckpointResp }
func (FlushReq) frameType() byte       { return TypeFlushReq }
func (FlushResp) frameType() byte      { return TypeFlushResp }
func (ErrorResp) frameType() byte      { return TypeError }
func (Quit) frameType() byte           { return TypeQuit }

// appendString appends a 16-bit length-prefixed string.
func appendString(dst []byte, s string) []byte {
	if len(s) > maxString {
		s = s[:maxString]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// AppendFrame appends the canonical encoding of m to dst.
func AppendFrame(dst []byte, m Msg) []byte {
	dst = append(dst, magic0, magic1, Version, m.frameType())
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	switch m := m.(type) {
	case Hello, StatsReq, MatchReq, CheckpointReq, FlushReq, Quit:
		// empty payload
	case Welcome:
		dst = binary.BigEndian.AppendUint64(dst, m.Applied)
		dst = binary.BigEndian.AppendUint32(dst, m.N)
		dst = binary.BigEndian.AppendUint32(dst, m.Shards)
		dst = appendString(dst, m.Backend)
	case Batch:
		dst = binary.BigEndian.AppendUint64(dst, m.Seq)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Updates)))
		for _, u := range m.Updates {
			op := byte(0)
			if u.Insert {
				op = 1
			}
			dst = append(dst, op)
			dst = binary.BigEndian.AppendUint32(dst, uint32(u.U))
			dst = binary.BigEndian.AppendUint32(dst, uint32(u.V))
		}
	case Ack:
		dst = binary.BigEndian.AppendUint64(dst, m.Seq)
		dst = binary.BigEndian.AppendUint64(dst, m.Applied)
	case StatsResp:
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Pairs)))
		for _, p := range m.Pairs {
			dst = appendString(dst, p.Name)
			dst = binary.BigEndian.AppendUint64(dst, uint64(p.Value))
		}
	case MatchResp:
		dst = binary.BigEndian.AppendUint32(dst, uint32(m.Size))
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Mates)))
		for _, w := range m.Mates {
			dst = binary.BigEndian.AppendUint32(dst, uint32(w))
		}
	case CheckpointResp:
		dst = binary.BigEndian.AppendUint64(dst, m.Seq)
		dst = binary.BigEndian.AppendUint32(dst, m.Bytes)
	case FlushResp:
		dst = binary.BigEndian.AppendUint64(dst, m.Applied)
	case ErrorResp:
		dst = binary.BigEndian.AppendUint16(dst, m.Code)
		dst = appendString(dst, m.Msg)
	}
	binary.BigEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst
}

// EncodeFrame returns the canonical encoding of m.
func EncodeFrame(m Msg) []byte { return AppendFrame(nil, m) }

// reader decodes payload fields with truncation checks.
type reader struct {
	typ byte
	b   []byte
	err error
}

func (r *reader) fail(field, why string) {
	if r.err == nil {
		r.err = &FormatError{Type: r.typ, Field: field, Why: why}
	}
}

func (r *reader) take(field string, n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.fail(field, fmt.Sprintf("truncated: need %d bytes, have %d", n, len(r.b)))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u16(field string) uint16 {
	b := r.take(field, 2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32(field string) uint32 {
	b := r.take(field, 4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64(field string) uint64 {
	b := r.take(field, 8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) str(field string) string {
	n := int(r.u16(field))
	b := r.take(field, n)
	if b == nil {
		return ""
	}
	return string(b)
}

// decodePayload decodes one payload of the given type. The payload must be
// consumed exactly.
func decodePayload(typ byte, payload []byte) (Msg, error) {
	r := &reader{typ: typ, b: payload}
	var m Msg
	switch typ {
	case TypeHello:
		m = Hello{}
	case TypeWelcome:
		m = Welcome{
			Applied: r.u64("applied"),
			N:       r.u32("n"),
			Shards:  r.u32("shards"),
			Backend: r.str("backend"),
		}
	case TypeBatch:
		b := Batch{Seq: r.u64("seq")}
		count := r.u32("count")
		if count > MaxBatchUpdates {
			r.fail("count", fmt.Sprintf("%d updates exceeds MaxBatchUpdates %d", count, MaxBatchUpdates))
		}
		if r.err == nil && len(r.b) != int(count)*9 {
			r.fail("updates", fmt.Sprintf("count %d wants %d payload bytes, have %d", count, count*9, len(r.b)))
		}
		if r.err == nil && count > 0 {
			b.Updates = make([]Update, count)
			for i := range b.Updates {
				op := r.take("op", 1)
				u := r.u32("u")
				v := r.u32("v")
				if r.err != nil {
					break
				}
				if op[0] > 1 {
					r.fail("op", fmt.Sprintf("opcode %d, want 0 (delete) or 1 (insert)", op[0]))
					break
				}
				if u >= 1<<31 || v >= 1<<31 {
					r.fail("endpoint", "vertex id overflows int32")
					break
				}
				b.Updates[i] = Update{Insert: op[0] == 1, U: int32(u), V: int32(v)}
			}
		}
		m = b
	case TypeAck:
		m = Ack{Seq: r.u64("seq"), Applied: r.u64("applied")}
	case TypeStatsReq:
		m = StatsReq{}
	case TypeStatsResp:
		s := StatsResp{}
		count := r.u32("count")
		if count > maxString {
			r.fail("count", fmt.Sprintf("%d pairs exceeds %d", count, maxString))
		}
		if r.err == nil && int64(count)*statPairMinBytes > int64(len(r.b)) {
			r.fail("count", fmt.Sprintf("count %d wants at least %d payload bytes, have %d", count, int64(count)*statPairMinBytes, len(r.b)))
		}
		if r.err == nil && count > 0 {
			s.Pairs = make([]StatPair, count)
			prev := ""
			for i := range s.Pairs {
				name := r.str("name")
				val := r.u64("value")
				if r.err != nil {
					break
				}
				if i > 0 && name <= prev {
					r.fail("name", fmt.Sprintf("pair %q out of order after %q (canonical order is strictly ascending)", name, prev))
					break
				}
				prev = name
				s.Pairs[i] = StatPair{Name: name, Value: int64(val)}
			}
		}
		m = s
	case TypeMatchReq:
		m = MatchReq{}
	case TypeMatchResp:
		mr := MatchResp{}
		size := r.u32("size")
		n := r.u32("n")
		if size >= 1<<31 {
			r.fail("size", "overflows int32")
		}
		if r.err == nil && len(r.b) != int(n)*4 {
			r.fail("mates", fmt.Sprintf("n %d wants %d payload bytes, have %d", n, n*4, len(r.b)))
		}
		if r.err == nil {
			mr.Size = int32(size)
			if int64(size) > int64(n)/2 {
				r.fail("size", fmt.Sprintf("size %d exceeds n/2 = %d", size, n/2))
			}
		}
		if r.err == nil && n > 0 {
			mr.Mates = make([]int32, n)
			for i := range mr.Mates {
				w := int32(r.u32("mate"))
				if r.err != nil {
					break
				}
				if w < -1 || w >= int32(n) {
					r.fail("mate", fmt.Sprintf("mate %d outside [-1,%d)", w, n))
					break
				}
				mr.Mates[i] = w
			}
		}
		m = mr
	case TypeCheckpointReq:
		m = CheckpointReq{}
	case TypeCheckpointResp:
		m = CheckpointResp{Seq: r.u64("seq"), Bytes: r.u32("bytes")}
	case TypeFlushReq:
		m = FlushReq{}
	case TypeFlushResp:
		m = FlushResp{Applied: r.u64("applied")}
	case TypeError:
		m = ErrorResp{Code: r.u16("code"), Msg: r.str("msg")}
	case TypeQuit:
		m = Quit{}
	default:
		return nil, &FormatError{Type: typ, Field: "type", Why: fmt.Sprintf("unknown frame type %d", typ)}
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, &FormatError{Type: typ, Field: "payload", Why: fmt.Sprintf("%d trailing bytes", len(r.b))}
	}
	return m, nil
}

// DecodeFrame decodes the first frame in b and returns the remaining
// bytes. Errors are ErrBadMagic, ErrFrameTooBig, *VersionError, or
// *FormatError.
func DecodeFrame(b []byte) (Msg, []byte, error) {
	if len(b) < headerLen {
		return nil, b, &FormatError{Field: "header", Why: fmt.Sprintf("truncated: need %d bytes, have %d", headerLen, len(b))}
	}
	if b[0] != magic0 || b[1] != magic1 {
		return nil, b, ErrBadMagic
	}
	if b[2] != Version {
		return nil, b, &VersionError{Got: b[2]}
	}
	typ := b[3]
	plen := binary.BigEndian.Uint32(b[4:8])
	if plen > MaxPayload {
		return nil, b, ErrFrameTooBig
	}
	if len(b)-headerLen < int(plen) {
		return nil, b, &FormatError{Type: typ, Field: "payload", Why: fmt.Sprintf("truncated: length prefix %d, have %d", plen, len(b)-headerLen)}
	}
	m, err := decodePayload(typ, b[headerLen:headerLen+int(plen)])
	if err != nil {
		return nil, b, err
	}
	return m, b[headerLen+int(plen):], nil
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, m Msg) error {
	_, err := w.Write(EncodeFrame(m))
	return err
}

// ReadFrame reads exactly one frame from r. A clean EOF before any header
// byte is io.EOF; a partial header or payload is io.ErrUnexpectedEOF.
// Other errors are the typed decode errors of DecodeFrame.
func ReadFrame(r io.Reader) (Msg, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return nil, ErrBadMagic
	}
	if hdr[2] != Version {
		return nil, &VersionError{Got: hdr[2]}
	}
	plen := binary.BigEndian.Uint32(hdr[4:8])
	if plen > MaxPayload {
		return nil, ErrFrameTooBig
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return decodePayload(hdr[3], payload)
}

// Bits returns the encoded size of m in bits, the quantity fault plans
// meter (faults.Injector.Fate).
func Bits(m Msg) int { return 8 * len(EncodeFrame(m)) }
