package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// sampleMsgs is one representative value per frame type, exercising empty
// and non-empty variable-length fields.
func sampleMsgs() []Msg {
	return []Msg{
		Hello{},
		Welcome{Applied: 42, N: 1000, Shards: 8, Backend: "gdelta"},
		Welcome{},
		Batch{Seq: 7, Updates: []Update{{Insert: true, U: 0, V: 9}, {Insert: false, U: 3, V: 4}}},
		Batch{Seq: 1},
		Ack{Seq: 9, Applied: 8},
		StatsReq{},
		StatsResp{Pairs: []StatPair{{Name: "a", Value: -1}, {Name: "b", Value: 1 << 40}}},
		StatsResp{},
		MatchReq{},
		MatchResp{Size: 1, Mates: []int32{1, 0, -1}},
		MatchResp{},
		CheckpointReq{},
		CheckpointResp{Seq: 11, Bytes: 4096},
		FlushReq{},
		FlushResp{Applied: 17},
		ErrorResp{Code: CodeInvalidUpdate, Msg: "vertex 12 outside [0,10)"},
		Quit{},
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	for _, m := range sampleMsgs() {
		enc := EncodeFrame(m)
		got, rest, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if len(rest) != 0 {
			t.Fatalf("%T: %d undecoded bytes", m, len(rest))
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("%T: round trip: got %+v, want %+v", m, got, m)
		}
		// Canonical: re-encoding the decoded message reproduces the bytes.
		if !bytes.Equal(EncodeFrame(got), enc) {
			t.Fatalf("%T: re-encode is not byte-identical", m)
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMsgs()
	for _, m := range msgs {
		if err := WriteFrame(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	valid := EncodeFrame(Batch{Seq: 3, Updates: []Update{{Insert: true, U: 1, V: 2}}})

	mutate := func(f func(b []byte) []byte) []byte {
		b := bytes.Clone(valid)
		return f(b)
	}
	cases := []struct {
		name string
		in   []byte
		want any // pointer to target type, or sentinel error
	}{
		{"empty", nil, &FormatError{}},
		{"short header", valid[:5], &FormatError{}},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b }), ErrBadMagic},
		{"bad version", mutate(func(b []byte) []byte { b[2] = 99; return b }), &VersionError{}},
		{"unknown type", mutate(func(b []byte) []byte { b[3] = 200; return b }), &FormatError{}},
		{"oversize length prefix", mutate(func(b []byte) []byte {
			b[4], b[5], b[6], b[7] = 0xff, 0xff, 0xff, 0xff
			return b
		}), ErrFrameTooBig},
		{"truncated payload", valid[:len(valid)-1], &FormatError{}},
		{"trailing payload bytes", mutate(func(b []byte) []byte {
			b[7]++ // lie: payload one byte longer than the fields need
			return append(b, 0)
		}), &FormatError{}},
		{"bad opcode", mutate(func(b []byte) []byte { b[headerLen+12] = 7; return b }), &FormatError{}},
		{"update count vs payload mismatch", mutate(func(b []byte) []byte {
			b[headerLen+11] = 2 // count says 2, payload carries 1
			return b
		}), &FormatError{}},
		{"unsorted stats pairs", EncodeFrame(StatsResp{Pairs: []StatPair{{Name: "b"}, {Name: "a"}}}), &FormatError{}},
		{"duplicate stats pair", EncodeFrame(StatsResp{Pairs: []StatPair{{Name: "a"}, {Name: "a"}}}), &FormatError{}},
		{"mate out of range", EncodeFrame(MatchResp{Mates: []int32{5}}), &FormatError{}},
		{"match size too big", EncodeFrame(MatchResp{Size: 3, Mates: []int32{1, 0, -1}}), &FormatError{}},
	}
	for _, tc := range cases {
		_, _, err := DecodeFrame(tc.in)
		if err == nil {
			t.Errorf("%s: decode accepted malformed input", tc.name)
			continue
		}
		switch want := tc.want.(type) {
		case *FormatError:
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Errorf("%s: err = %T %v, want *FormatError", tc.name, err, err)
			}
		case *VersionError:
			var ve *VersionError
			if !errors.As(err, &ve) {
				t.Errorf("%s: err = %T %v, want *VersionError", tc.name, err, err)
			}
		case error:
			if !errors.Is(err, want) {
				t.Errorf("%s: err = %v, want %v", tc.name, err, want)
			}
		}
	}
}

func TestReadFrameRefusesHugeAllocation(t *testing.T) {
	// A length prefix of MaxPayload+1 must be rejected from the header
	// alone — before any payload-sized allocation.
	hdr := []byte{magic0, magic1, Version, TypeHello, 0x04, 0x00, 0x00, 0x01}
	if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v, want ErrFrameTooBig", err)
	}
}

func TestReadFramePartial(t *testing.T) {
	enc := EncodeFrame(Ack{Seq: 1, Applied: 1})
	for cut := 1; cut < len(enc); cut++ {
		_, err := ReadFrame(bytes.NewReader(enc[:cut]))
		if err == nil {
			t.Fatalf("cut %d: accepted truncated stream", cut)
		}
	}
}

func TestBits(t *testing.T) {
	m := Ack{Seq: 1, Applied: 2}
	if got, want := Bits(m), 8*len(EncodeFrame(m)); got != want {
		t.Fatalf("Bits = %d, want %d", got, want)
	}
}
