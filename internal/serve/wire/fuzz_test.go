package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// FuzzWireRoundTrip pins the codec's safety and canonicality contracts on
// arbitrary input:
//
//  1. DecodeFrame never panics and never reports success on input it did
//     not fully validate;
//  2. every decode error is one of the typed errors of the package;
//  3. if a frame decodes, re-encoding it reproduces exactly the consumed
//     prefix (canonical encoding), and decoding the re-encoding yields a
//     deeply equal message (round trip);
//  4. ReadFrame agrees with DecodeFrame on the same bytes.
func FuzzWireRoundTrip(f *testing.F) {
	for _, m := range []Msg{
		Hello{},
		Welcome{Applied: 3, N: 100, Shards: 4, Backend: "edcs"},
		Batch{Seq: 9, Updates: []Update{{Insert: true, U: 5, V: 6}, {Insert: false, U: 1, V: 2}}},
		Ack{Seq: 2, Applied: 2},
		StatsResp{Pairs: []StatPair{{Name: "updates_applied", Value: 12}}},
		MatchResp{Size: 1, Mates: []int32{1, 0, -1, -1}},
		CheckpointResp{Seq: 4, Bytes: 128},
		FlushResp{Applied: 6},
		ErrorResp{Code: CodeCrashed, Msg: "crashed by fault plan"},
		Quit{},
	} {
		f.Add(EncodeFrame(m))
	}
	// Malformed seeds: truncations, bad magic, bad version, garbage.
	f.Add([]byte{})
	f.Add([]byte{'S'})
	f.Add([]byte{'S', 'M', Version, TypeBatch, 0, 0, 0, 1})
	f.Add([]byte{'X', 'Y', Version, TypeHello, 0, 0, 0, 0})
	f.Add([]byte{'S', 'M', 99, TypeHello, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, rest, err := DecodeFrame(data)
		if err != nil {
			var fe *FormatError
			var ve *VersionError
			if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrFrameTooBig) &&
				!errors.As(err, &fe) && !errors.As(err, &ve) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			return
		}
		consumed := data[:len(data)-len(rest)]
		enc := EncodeFrame(m)
		if !bytes.Equal(enc, consumed) {
			t.Fatalf("non-canonical accept: consumed %x, canonical %x", consumed, enc)
		}
		m2, rest2, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("re-decode left %d bytes", len(rest2))
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip diverged:\n first %+v\nsecond %+v", m, m2)
		}
		// ReadFrame must accept the same frame from a stream.
		m3, err := ReadFrame(bytes.NewReader(consumed))
		if err != nil {
			t.Fatalf("ReadFrame on decodable bytes: %v", err)
		}
		if !reflect.DeepEqual(m, m3) {
			t.Fatalf("ReadFrame disagrees with DecodeFrame")
		}
	})
}
