package serve_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"testing"

	"repro/internal/faults"
	"repro/internal/serve"
)

// mkCheckpoint builds a small synthetic checkpoint whose payload encodes
// the applied sequence, so generations are distinguishable on restore.
func mkCheckpoint(applied uint64) *serve.Checkpoint {
	return &serve.Checkpoint{
		Applied: applied,
		N:       64,
		Beta:    2,
		Eps:     0.3,
		Seed:    7,
		Backend: "gdelta",
		Payload: []byte(fmt.Sprintf("payload-%d", applied)),
	}
}

// writeGens opens a store over fs and writes k generations.
func writeGens(t *testing.T, fs faults.FS, dir string, keep, k int) *serve.Store {
	t.Helper()
	st, err := serve.OpenStore(fs, dir, keep)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= k; i++ {
		if _, _, _, err := st.Write(mkCheckpoint(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// rewrite mutates one file on fs in place.
func rewrite(t *testing.T, fs faults.FS, path string, mutate func([]byte) []byte) {
	t.Helper()
	b, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b = mutate(append([]byte(nil), b...))
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// sealRaw hand-rolls a durable envelope (magic SMCE, version, gen,
// length-prefixed payload, trailing CRC-32C) so tests can build envelopes
// the store itself would refuse to write.
func sealRaw(version byte, gen uint64, payload []byte) []byte {
	b := append([]byte("SMCE"), version)
	b = binary.BigEndian.AppendUint64(b, gen)
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	return binary.BigEndian.AppendUint32(b, crc32.Checksum(b, crc32.MakeTable(crc32.Castagnoli)))
}

// TestStoreGenerationsAndPruning pins the generational lifecycle: keep-K
// pruning, restore of the newest generation, and numbering that continues
// across a store reopen.
func TestStoreGenerationsAndPruning(t *testing.T) {
	fs := faults.NewMemFS()
	st := writeGens(t, fs, "ck", 3, 5)
	gens, err := st.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 3 || gens[0] != 3 || gens[2] != 5 {
		t.Fatalf("generations after keep-3 pruning = %v, want [3 4 5]", gens)
	}
	c, report, err := st.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if report.Gen != 5 || c.Applied != 5 || len(report.Skipped) != 0 {
		t.Fatalf("restore = gen %d applied %d skipped %d", report.Gen, c.Applied, len(report.Skipped))
	}
	// Reopen: the next write must continue numbering, never reuse gen 5.
	st2, err := serve.OpenStore(fs, "ck", 3)
	if err != nil {
		t.Fatal(err)
	}
	gen, path, n, err := st2.Write(mkCheckpoint(6))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 6 || n == 0 {
		t.Fatalf("reopened store wrote gen %d (%d bytes), want gen 6", gen, n)
	}
	if _, err := fs.ReadFile(path); err != nil {
		t.Fatalf("written generation unreadable: %v", err)
	}
}

// TestRestoreScanTable drives the newest→oldest scan over every corruption
// class: each damages the newest generation only, and restore must land on
// the previous one with a one-entry skip report naming the damaged
// generation and a typed cause.
func TestRestoreScanTable(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantVer bool // cause should be a *CheckpointVersionError
	}{
		{name: "bad-magic", mutate: func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{name: "bad-crc", mutate: func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }},
		{name: "truncated-envelope", mutate: func(b []byte) []byte { return b[:10] }},
		{name: "truncated-tail", mutate: func(b []byte) []byte { return b[:len(b)-3] }},
		{name: "empty", mutate: func(b []byte) []byte { return nil }},
		{name: "version-skew", mutate: func(b []byte) []byte {
			return sealRaw(99, 3, []byte("whatever"))
		}, wantVer: true},
		{name: "garbage-payload", mutate: func(b []byte) []byte {
			// Envelope intact (CRC valid), payload is not a server checkpoint.
			return sealRaw(1, 3, []byte("this is not SMCP"))
		}},
		{name: "generation-mismatch", mutate: func(b []byte) []byte {
			// A valid envelope for generation 999 stored under gen 3's name.
			return sealRaw(1, 999, b[17:len(b)-4])
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := faults.NewMemFS()
			st := writeGens(t, fs, "ck", 4, 3)
			rewrite(t, fs, "ck/ckpt.000003", tc.mutate)
			c, report, err := st.Restore()
			if err != nil {
				t.Fatalf("restore failed outright: %v", err)
			}
			if report.Gen != 2 || c.Applied != 2 {
				t.Fatalf("restored gen %d applied %d, want generation 2", report.Gen, c.Applied)
			}
			if len(report.Skipped) != 1 {
				t.Fatalf("skip report has %d entries, want 1: %v", len(report.Skipped), report.Skipped)
			}
			sk := report.Skipped[0]
			if sk.Gen != 3 {
				t.Fatalf("skipped generation %d, want 3", sk.Gen)
			}
			var ce *serve.CheckpointError
			var ve *serve.CheckpointVersionError
			switch {
			case tc.wantVer:
				if !errors.As(sk.Err, &ve) {
					t.Fatalf("cause = %v, want *CheckpointVersionError", sk.Err)
				}
			default:
				if !errors.As(sk.Err, &ce) {
					t.Fatalf("cause = %v, want *CheckpointError", sk.Err)
				}
			}
			var cce *serve.CorruptCheckpointError
			if !errors.As(error(sk), &cce) {
				t.Fatalf("skip entry is %T, want *CorruptCheckpointError", sk)
			}
		})
	}
}

// TestRestoreAllCorrupt: when every generation is damaged, restore fails
// with a typed *NoValidCheckpointError carrying the full damage list,
// newest first.
func TestRestoreAllCorrupt(t *testing.T) {
	fs := faults.NewMemFS()
	st := writeGens(t, fs, "ck", 4, 3)
	for g := 1; g <= 3; g++ {
		rewrite(t, fs, fmt.Sprintf("ck/ckpt.%06d", g), func(b []byte) []byte { b[6] ^= 0x10; return b })
	}
	_, _, err := st.Restore()
	var nve *serve.NoValidCheckpointError
	if !errors.As(err, &nve) {
		t.Fatalf("restore error = %v, want *NoValidCheckpointError", err)
	}
	if len(nve.Skipped) != 3 || nve.Skipped[0].Gen != 3 || nve.Skipped[2].Gen != 1 {
		t.Fatalf("damage list = %v, want gens [3 2 1]", nve.Skipped)
	}

	// An empty directory is the same typed error with nothing skipped.
	empty, err := serve.OpenStore(faults.NewMemFS(), "none", 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = empty.Restore()
	if !errors.As(err, &nve) || len(nve.Skipped) != 0 {
		t.Fatalf("empty-dir restore = %v", err)
	}
}

// TestRestoreIgnoresForeignFiles: temp leftovers and unrelated names in
// the checkpoint directory must not confuse the scan.
func TestRestoreIgnoresForeignFiles(t *testing.T) {
	fs := faults.NewMemFS()
	st := writeGens(t, fs, "ck", 4, 2)
	for _, name := range []string{"ck/ckpt.000009.tmp", "ck/README", "ck/ckpt.nonsense"} {
		f, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("junk"))
		f.Close()
	}
	c, report, err := st.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if report.Gen != 2 || c.Applied != 2 || len(report.Skipped) != 0 {
		t.Fatalf("restore with foreign files = gen %d, skipped %v", report.Gen, report.Skipped)
	}
}

// TestCrashConsistencyTorture is the tentpole durability drill: for BOTH
// backends, a storage fault is injected at EVERY faultable operation of
// the checkpoint write path (torn write, bit-flip, failed fsync, failed
// rename — each at every step index the run reaches), the server then
// "crashes", and recovery must always land on a valid earlier generation
// whose replayed continuation is bit-identical to a never-crashed run.
func TestCrashConsistencyTorture(t *testing.T) {
	const (
		n         = 100
		batchSize = 25
		ckptEvery = 4
	)
	churn := 300
	if testing.Short() {
		churn = 150
	}
	updates, ups := testTrace(t, n, 8, churn, 41)

	for _, backend := range serve.BackendNames() {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			want := directReplay(t, backend, n, updates)
			wantMates := want.Matching().Mates()

			// runOnce serves the full trace with auto-checkpoints through
			// fs, then crashes (shuts down) and returns the underlying mem
			// for recovery.
			runOnce := func(t *testing.T, inj faults.FS) {
				t.Helper()
				s, err := serve.New(serve.Config{
					N: n, Shards: 2, Beta: testBeta, Eps: testEps, Seed: testSeed,
					Backend:         backend,
					CheckpointEvery: ckptEvery,
					CheckpointDir:   "ck",
					FS:              inj,
				})
				if err != nil {
					t.Fatal(err)
				}
				addr := listen(t, s)
				c := dial(t, addr)
				if err := c.SendUpdates(ups, batchSize); err != nil {
					t.Fatal(err)
				}
				// The final explicit checkpoint may be the faulted write;
				// a failure here is exactly the crash being simulated.
				s.CheckpointNow()
				s.Shutdown()
			}

			// Dry run on a clean MemFS to count the faultable operations
			// one full serving run performs.
			dry := faults.NewStorageInjector(faults.NewMemFS(), faults.StoragePlan{})
			runOnce(t, dry)
			steps := dry.Ops()
			if steps < 8 {
				t.Fatalf("dry run performed %d faultable ops; too few for a meaningful sweep", steps)
			}

			// Store.Write's op order is fixed — write, fsync, rename,
			// fsync(dir) — so only the kinds that can land on each step are
			// swept; the Hits assertion below catches any drift in that
			// order.
			kindsFor := map[int][]faults.StorageFault{
				0: {faults.FaultTornWrite, faults.FaultBitFlip},
				1: {faults.FaultSyncFail},
				2: {faults.FaultRenameFail},
				3: {faults.FaultSyncFail},
			}
			hits, skips := 0, 0
			for step := 0; step < steps; step++ {
				for _, kind := range kindsFor[step%4] {
					mem := faults.NewMemFS()
					inj := faults.NewStorageInjector(mem, faults.StoragePlan{
						Seed: uint64(1000*step) + uint64(kind), Step: step, Fault: kind,
					})
					runOnce(t, inj)
					if inj.Hits() == 0 {
						t.Fatalf("step %d %v: fault never fired — write protocol op order drifted", step, kind)
					}
					hits++

					// Recovery reads through the raw MemFS: the torn bytes
					// are on "disk", the injector is out of the picture.
					ck, report, err := serve.RestoreLatest(mem, "ck")
					if err != nil {
						t.Fatalf("step %d %v: recovery found no valid generation: %v", step, kind, err)
					}
					skips += len(report.Skipped)
					restored, err := serve.NewFromCheckpoint(serve.Config{Shards: 2}, ck)
					if err != nil {
						t.Fatalf("step %d %v: restore: %v", step, kind, err)
					}
					addr := listen(t, restored)
					c := dial(t, addr)
					if got := c.Welcome().Applied; got != ck.Applied {
						t.Fatalf("step %d %v: welcome %d, checkpoint %d", step, kind, got, ck.Applied)
					}
					if err := c.SendUpdates(ups, batchSize); err != nil {
						t.Fatalf("step %d %v: replay: %v", step, kind, err)
					}
					mates, size, err := c.Matching()
					if err != nil {
						t.Fatal(err)
					}
					if size != want.Matching().Size() || !equalMates(mates, wantMates) {
						t.Fatalf("step %d %v: recovered replay diverged from the never-crashed run", step, kind)
					}
					restored.Shutdown()
				}
			}
			if hits == 0 {
				t.Fatal("torture sweep never injected a fault")
			}
			if skips == 0 {
				t.Fatal("no run ever had to skip a damaged generation — the bit-flip axis is not biting")
			}
			t.Logf("%s: %d faultable ops, %d faulted runs, %d generations skipped during recovery", backend, steps, hits, skips)
		})
	}
}

func equalMates(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRestoreShortRead pins the read-side fault axis: a short read while
// scanning makes the newest generation LOOK truncated; the scan must skip
// it and recover from the previous one rather than fail.
func TestRestoreShortRead(t *testing.T) {
	mem := faults.NewMemFS()
	writeGens(t, mem, "ck", 4, 3)
	inj := faults.NewStorageInjector(mem, faults.StoragePlan{Seed: 2, Step: 0, Fault: faults.FaultShortRead})
	c, report, err := serve.RestoreLatest(inj, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if inj.Hits() != 1 {
		t.Fatalf("short-read fault fired %d times, want 1", inj.Hits())
	}
	if report.Gen != 2 || c.Applied != 2 || len(report.Skipped) != 1 || report.Skipped[0].Gen != 3 {
		t.Fatalf("short-read restore = gen %d, skipped %v", report.Gen, report.Skipped)
	}
}
