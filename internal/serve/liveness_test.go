package serve_test

import (
	"bufio"
	"errors"
	"net"
	"slices"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/serve"
	"repro/internal/serve/wire"
)

// deadServer listens, completes the Hello/Welcome handshake, and then
// goes silent forever — the pathology the client deadlines exist for.
func deadServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		br := bufio.NewReader(conn)
		bw := bufio.NewWriter(conn)
		if _, err := wire.ReadFrame(br); err != nil { // Hello
			return
		}
		wire.WriteFrame(bw, wire.Welcome{N: 100, Shards: 1, Backend: "gdelta"})
		bw.Flush()
		// Silence: keep the conn open, never read or write again.
		select {}
	}()
	return l.Addr().String()
}

// TestDeadServerTimeout pins the liveness contract: a request against a
// server that stopped responding returns a typed *TimeoutError within the
// configured deadline — never a hang.
func TestDeadServerTimeout(t *testing.T) {
	addr := deadServer(t)
	const timeout = 200 * time.Millisecond
	c, err := serve.DialOptions(addr, serve.ClientOptions{
		TimeoutNanos: int64(timeout),
		NowNanos:     func() int64 { return time.Now().UnixNano() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Flush()
	elapsed := time.Since(start)
	var te *serve.TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("dead-server flush returned %v, want *TimeoutError", err)
	}
	if te.Op != "read" || !te.Timeout() {
		t.Fatalf("timeout error = %+v, want a read timeout", te)
	}
	if elapsed > 10*timeout {
		t.Fatalf("timed out after %v, deadline was %v", elapsed, timeout)
	}
}

// TestClientTimeoutRequiresClock pins the configuration contract:
// deadlines without an injected wall clock are a construction error, not
// a silent misbehavior.
func TestClientTimeoutRequiresClock(t *testing.T) {
	addr := deadServer(t)
	if _, err := serve.DialOptions(addr, serve.ClientOptions{TimeoutNanos: 1e9}); err == nil {
		t.Fatal("TimeoutNanos without NowNanos was accepted")
	}
}

// TestOverloadShed drives a client far ahead of a tiny admission quota:
// batches beyond applied+MaxInflight come back CodeOverloaded, the client
// retries after backoff, every batch eventually commits, and the final
// state is bit-identical to a direct replay. The shed counter proves the
// quota actually engaged.
func TestOverloadShed(t *testing.T) {
	const n = 120
	updates, ups := testTrace(t, n, 8, 500, 31)
	_, addr := startServer(t, serve.Config{
		N: n, Shards: 2, Beta: testBeta, Eps: testEps, Seed: testSeed,
		MaxInflight: 8, // far below the client's 64-deep send window
	})
	var pauses atomic.Int64
	c, err := serve.DialOptions(addr, serve.ClientOptions{
		MaxPasses: 32,
		Backoff:   serve.Backoff{BaseNanos: 1, MaxNanos: 8, Seed: 9},
		Sleep:     func(nanos int64) { pauses.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SendUpdates(ups, 20); err != nil {
		t.Fatal(err)
	}
	want := directReplay(t, serve.DefaultBackend, n, updates)
	mates, _, err := c.Matching()
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(mates, want.Matching().Mates()) {
		t.Fatal("overload-shed run diverged from the direct replay")
	}
	pairs, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	shed := int64(0)
	for _, p := range pairs {
		if p.Name == "loadshed_batches" {
			shed = p.Value
		}
	}
	if shed == 0 {
		t.Fatal("admission quota never shed a batch — the test exercised nothing")
	}
	if pauses.Load() == 0 {
		t.Fatal("client retried without ever pausing")
	}
}

// TestRetryExhausted pins the typed retry budget: against a plan that
// drops every batch, SendUpdates gives up after MaxPasses with a
// *RetryExhaustedError carrying the (lack of) progress, and the injected
// pacer observed exactly the deterministic backoff schedule.
func TestRetryExhausted(t *testing.T) {
	const n = 40
	_, ups := testTrace(t, n, 6, 120, 13)
	_, addr := startServer(t, serve.Config{
		N: n, Shards: 1, Beta: testBeta, Eps: testEps, Seed: testSeed,
		Plan: &faults.Plan{Seed: 3, DropRate: 1.0},
	})
	bo := serve.Backoff{BaseNanos: 100, MaxNanos: 400, Seed: 77}
	var got []int64
	c, err := serve.DialOptions(addr, serve.ClientOptions{
		MaxPasses: 3,
		Backoff:   bo,
		Sleep:     func(nanos int64) { got = append(got, nanos) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.SendUpdates(ups, 16)
	var re *serve.RetryExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("total drop returned %v, want *RetryExhaustedError", err)
	}
	total := uint64((len(ups) + 15) / 16)
	if re.Committed != 0 || re.Total != total || re.Passes != 3 {
		t.Fatalf("exhausted = %+v, want committed 0 of %d after 3 passes", re, total)
	}
	want := []int64{bo.Pause(1), bo.Pause(2)}
	if !slices.Equal(got, want) {
		t.Fatalf("pacer observed %v, want the deterministic schedule %v", got, want)
	}
}

// TestBackoffSchedule pins the pause math: deterministic for a fixed
// (seed, pass), exponential up to the cap, and jitter confined to the
// documented [d/2, d] band.
func TestBackoffSchedule(t *testing.T) {
	b := serve.Backoff{BaseNanos: 1000, MaxNanos: 16000, Seed: 5}
	for k := 1; k <= 10; k++ {
		d := int64(1000) << (k - 1)
		if d > 16000 {
			d = 16000
		}
		p := b.Pause(k)
		if p != b.Pause(k) {
			t.Fatalf("pass %d: Pause is not deterministic", k)
		}
		if p < d/2 || p > d {
			t.Fatalf("pass %d: pause %d outside [%d, %d]", k, p, d/2, d)
		}
	}
	if z := (serve.Backoff{}).Pause(1); z <= 0 {
		t.Fatalf("zero-value backoff pause = %d, want a positive default", z)
	}
	jittered := false
	for k := 1; k <= 8; k++ {
		a := serve.Backoff{BaseNanos: 1 << 20, MaxNanos: 1 << 30, Seed: 1}.Pause(k)
		c := serve.Backoff{BaseNanos: 1 << 20, MaxNanos: 1 << 30, Seed: 2}.Pause(k)
		if a != c {
			jittered = true
		}
	}
	if !jittered {
		t.Fatal("different seeds never produced different jitter")
	}
}

// TestIdleConnEviction runs a server with I/O deadlines and a real
// (injected) clock: a conn that completes the handshake and then goes
// mute is evicted within the deadline, counted in conns_evicted, while a
// live client keeps working. Run under -race in CI.
func TestIdleConnEviction(t *testing.T) {
	const n = 60
	_, ups := testTrace(t, n, 6, 150, 3)
	_, addr := startServer(t, serve.Config{
		N: n, Shards: 2, Beta: testBeta, Eps: testEps, Seed: testSeed,
		IOTimeoutNanos: int64(150 * time.Millisecond),
		NowNanos:       func() int64 { return time.Now().UnixNano() },
	})

	// The mute peer: handshake, then nothing.
	mute, err := serve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer mute.Close()

	// A live client works throughout — eviction is targeted, not global.
	c := dial(t, addr)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c.SendUpdates(ups, 16); err != nil {
			t.Fatal(err)
		}
		pairs, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		var evicted, opened int64
		for _, p := range pairs {
			switch p.Name {
			case "conns_evicted":
				evicted = p.Value
			case "conns_opened":
				opened = p.Value
			}
		}
		if evicted >= 1 {
			if opened < 2 {
				t.Fatalf("conns_opened = %d, want at least the mute and live conns", opened)
			}
			// The evicted conn is really dead: its next request fails.
			if _, err := mute.Flush(); err == nil {
				t.Fatal("evicted conn still answered a flush")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("mute conn was never evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
