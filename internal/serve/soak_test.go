package serve_test

import (
	"os"
	"slices"
	"strconv"
	"testing"

	"repro/internal/faults"
	"repro/internal/serve"
)

// TestMatchdSoak is the CI soak entry point for the serving stack: a
// wire-driven client streams a churn trace into a sharded server under a
// seeded fault plan (the CI job runs it race-enabled), retransmitting
// through drops, duplicates, and delays until everything commits. At every
// drop rate the final matching must be bit-identical to a fault-free
// direct replay — the faults shake delivery, never state. The CI matrix
// sets MATCHD_SOAK_DROP to soak one rate per job; unset (a plain
// `go test`) covers both rates, reduced to one plan seed under -short.
func TestMatchdSoak(t *testing.T) {
	rates := []float64{0, 0.2}
	planSeeds := []uint64{31, 47}
	if env := os.Getenv("MATCHD_SOAK_DROP"); env != "" {
		r, err := strconv.ParseFloat(env, 64)
		if err != nil {
			t.Fatalf("MATCHD_SOAK_DROP=%q: %v", env, err)
		}
		rates = []float64{r}
	} else if testing.Short() {
		planSeeds = planSeeds[:1]
	}
	const n = 300
	updates, ups := testTrace(t, n, 8, 3000, 11)
	want := directReplay(t, serve.DefaultBackend, n, updates).Matching().Mates()
	for _, rate := range rates {
		for _, planSeed := range planSeeds {
			var plan *faults.Plan
			if rate > 0 {
				plan = &faults.Plan{
					Seed: planSeed, DropRate: rate,
					DupRate: rate / 2, DelayRate: rate / 2, MaxDelay: 7,
				}
			}
			srv, addr := startServer(t, serve.Config{
				N: n, Shards: 4, Beta: testBeta, Eps: testEps, Seed: testSeed,
				QueueDepth: 8, Plan: plan,
			})
			c := dial(t, addr)
			if err := c.SendUpdates(ups, 33); err != nil {
				t.Fatalf("drop=%g seed=%d: %v", rate, planSeed, err)
			}
			mates, _, err := c.Matching()
			if err != nil {
				t.Fatalf("drop=%g seed=%d: matching: %v", rate, planSeed, err)
			}
			if !slices.Equal(mates, want) {
				t.Errorf("drop=%g seed=%d: served matching diverged from fault-free replay", rate, planSeed)
			}
			srv.Shutdown()
		}
	}
}
