package serve_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/serve"
)

// validCheckpoint builds a real server, feeds it, and returns a marshaled
// checkpoint to corrupt.
func validCheckpoint(t *testing.T) []byte {
	t.Helper()
	const n = 50
	_, ups := testTrace(t, n, 6, 150, 13)
	s, addr := startServer(t, serve.Config{N: n, Beta: testBeta, Eps: testEps, Seed: testSeed})
	c := dial(t, addr)
	if err := c.SendUpdates(ups, 16); err != nil {
		t.Fatal(err)
	}
	ck, _, err := s.CheckpointNow()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ck.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServerCheckpointCodecRoundTrip pins canonical encoding through a
// decode→encode cycle.
func TestServerCheckpointCodecRoundTrip(t *testing.T) {
	b := validCheckpoint(t)
	ck, err := serve.UnmarshalServerCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Backend != serve.DefaultBackend || ck.Applied == 0 || len(ck.Payload) == 0 {
		t.Fatalf("decoded checkpoint %+v looks empty", ck)
	}
	again, err := ck.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, again) {
		t.Fatal("decode→encode is not byte-identical")
	}
}

// TestServerCheckpointCodecTruncation sweeps every strict prefix: each
// must fail with a typed error, never panic, never succeed.
func TestServerCheckpointCodecTruncation(t *testing.T) {
	b := validCheckpoint(t)
	for cut := 0; cut < len(b); cut++ {
		_, err := serve.UnmarshalServerCheckpoint(b[:cut])
		if err == nil {
			t.Fatalf("prefix %d/%d decoded successfully", cut, len(b))
		}
		var ce *serve.CheckpointError
		var ve *serve.CheckpointVersionError
		if !errors.As(err, &ce) && !errors.As(err, &ve) {
			t.Fatalf("prefix %d: untyped error %T: %v", cut, err, err)
		}
	}
}

// TestServerCheckpointCodecNegativePaths is the corruption table for the
// server-level header; payload damage surfaces from the backend decoder
// at restore time.
func TestServerCheckpointCodecNegativePaths(t *testing.T) {
	valid := validCheckpoint(t)
	mutate := func(f func(b []byte)) []byte {
		b := bytes.Clone(valid)
		f(b)
		return b
	}
	cases := []struct {
		name        string
		in          []byte
		wantVersion bool
	}{
		{"empty", nil, false},
		{"bad magic", mutate(func(b []byte) { b[0] = 'Q' }), false},
		{"version mismatch", mutate(func(b []byte) { b[4] = serve.CheckpointVersion + 9 }), true},
		{"trailing bytes", append(bytes.Clone(valid), 0xAB), false},
		{"payload length bomb", mutate(func(b []byte) {
			// The payload length u32 sits right after the backend name
			// (offset 4+1+8+8+8+8+8+2+len("gdelta") = 53). Claim far more
			// bytes than remain.
			off := 47 + len(serve.DefaultBackend)
			b[off], b[off+1], b[off+2], b[off+3] = 0xFF, 0xFF, 0xFF, 0xFF
		}), false},
	}
	for _, tc := range cases {
		_, err := serve.UnmarshalServerCheckpoint(tc.in)
		if err == nil {
			t.Errorf("%s: accepted corrupt bytes", tc.name)
			continue
		}
		var ve *serve.CheckpointVersionError
		if got := errors.As(err, &ve); got != tc.wantVersion {
			t.Errorf("%s: version-error = %v (%v), want %v", tc.name, got, err, tc.wantVersion)
		}
	}
}

// TestRestoreRejectsCorruptPayload pins the cross-layer error path: a
// structurally valid server header whose backend payload is damaged must
// fail NewFromCheckpoint with the backend's typed error, not a panic.
func TestRestoreRejectsCorruptPayload(t *testing.T) {
	b := validCheckpoint(t)
	ck, err := serve.UnmarshalServerCheckpoint(b)
	if err != nil {
		t.Fatal(err)
	}
	ck.Payload = ck.Payload[:len(ck.Payload)-3] // truncate the matcher state
	if _, err := serve.NewFromCheckpoint(serve.Config{}, ck); err == nil {
		t.Fatal("NewFromCheckpoint accepted a truncated backend payload")
	}
	ck2, _ := serve.UnmarshalServerCheckpoint(b)
	ck2.Backend = "nope"
	if _, err := serve.NewFromCheckpoint(serve.Config{}, ck2); err == nil {
		t.Fatal("NewFromCheckpoint accepted an unknown backend")
	}
}

// TestWriteCheckpointFileAtomic checks the temp-then-rename protocol: a
// second write lands completely or not at all, and no temp file lingers.
func TestWriteCheckpointFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	ck := &serve.Checkpoint{Applied: 3, N: 5, Beta: 2, Eps: 0.5, Seed: 1, Backend: "gdelta", Payload: []byte{1, 2, 3}}
	if _, err := serve.WriteCheckpointFile(path, ck); err != nil {
		t.Fatal(err)
	}
	ck.Applied = 4
	n, err := serve.WriteCheckpointFile(path, ck)
	if err != nil {
		t.Fatal(err)
	}
	got, err := serve.ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Applied != 4 {
		t.Fatalf("read applied %d, want 4", got.Applied)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temp file left behind")
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(n) {
		t.Fatalf("file size %v/%v, want %d bytes", fi, err, n)
	}
}
