// Package serve runs a dynamic-matching maintainer as a long-running
// sharded service. Clients stream edge insert/delete batches over the
// length-prefixed binary protocol in internal/serve/wire; the server
// pipelines each batch through per-shard bounded ingest queues and commits
// it through a single deterministic applier, checkpointing periodically so
// a crashed process restarts from durable state.
//
// # Architecture: sharded ingest, sequenced apply
//
// The vertex space is partitioned across S shards; an update on edge
// {u, v} is owned by shard min(u, v) mod S. Connection readers decode and
// admission-check batches in parallel (one goroutine per connection), a
// dispatcher deduplicates and orders them by batch sequence number and
// splits each into per-shard parts, and shard workers validate their parts
// concurrently behind bounded queues — a full queue blocks the dispatcher,
// which blocks connection readers: backpressure reaches the client as TCP
// flow control, never as unbounded memory. Commitment is deliberately NOT
// sharded: a single applier goroutine reassembles each batch's parts in
// the client's original update order and applies them to one authoritative
// matcher. That sequenced-apply discipline is what makes the served
// matching bit-identical to a direct single-threaded replay for EVERY
// shard count — the replay-conformance contract the test suite pins.
//
// # Exactly-once ingest
//
// Batches carry client-assigned sequence numbers 1, 2, 3, … The
// dispatcher applies each sequence exactly once: stale sequences are
// acknowledged but discarded, future sequences wait in a reorder buffer,
// and the contiguous prefix is released in order. Retransmitting a batch
// is therefore always safe, which is how clients survive the injected
// message faults (drop / duplicate / delay) of an internal/faults plan
// threaded into the delivery path.
//
// # Crash model
//
// A faults.Plan crash schedule (node 0 = the server) crash-stops the
// server at a scheduled arrival: ingest halts abruptly and clients see
// CodeCrashed. Restart is the operator's move — `matchd -restore` (or
// NewFromCheckpoint) rebuilds a server from the last durable checkpoint,
// and clients replay from the acknowledged-applied sequence in Welcome.
package serve

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/serve/wire"
)

// serverNode is the faults.Plan node id under which the server's crash
// schedule is keyed; clients are node 1.
const serverNode = 0

// maxShards bounds the shard count (each shard costs a goroutine and a
// bounded queue).
const maxShards = 1 << 10

// Config parameterizes a server.
type Config struct {
	// N is the vertex count; updates must name endpoints in [0, N).
	N int
	// Shards is the number of ingest shards (default 1).
	Shards int
	// Beta is the neighborhood-independence bound assumed by the gdelta
	// backend (default 2; ignored by edcs).
	Beta int
	// Eps is the approximation parameter (default 0.5).
	Eps float64
	// Seed drives the backend's private randomness.
	Seed uint64
	// Backend selects the matcher implementation (default DefaultBackend).
	Backend string
	// QueueDepth bounds each shard's ingest queue (default 64 batches).
	QueueDepth int
	// CheckpointEvery automatically checkpoints after that many applied
	// batches; 0 disables automatic checkpoints.
	CheckpointEvery int
	// CheckpointDir is the directory where checkpoint generations are
	// durably written (temp → write → fsync → rename → fsync dir, sealed
	// in a checksummed envelope); "" keeps checkpoints in memory only.
	CheckpointDir string
	// CheckpointKeep is how many checkpoint generations to retain
	// (default DefaultCheckpointKeep).
	CheckpointKeep int
	// FS is the filesystem checkpoints are written through; nil uses the
	// real filesystem. Tests inject a faults.MemFS or StorageInjector.
	FS faults.FS
	// Plan optionally injects message faults and server crashes on the
	// ingest path. A nil plan injects nothing.
	Plan *faults.Plan
	// IOTimeoutNanos arms a deadline on every connection read and write:
	// a conn that neither sends a frame nor drains replies within the
	// timeout is evicted (counted in conns_evicted) instead of occupying
	// the server forever. 0 disables deadlines. Requires a wall-clock
	// NowNanos — daemons set both together.
	IOTimeoutNanos int64
	// MaxInflight is the per-stream admission quota: a batch whose
	// sequence runs more than this far ahead of the committed prefix is
	// shed with CodeOverloaded (counted in loadshed_batches) instead of
	// queueing unboundedly. 0 → DefaultMaxInflight; negative disables
	// shedding.
	MaxInflight int
	// NowNanos supplies timestamps for latency and uptime accounting. nil
	// falls back to a deterministic logical tick counter, keeping the
	// package free of wall-clock reads; daemons inject a real clock.
	NowNanos func() int64
}

func (cfg Config) withDefaults() Config {
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Beta == 0 {
		cfg.Beta = 2
	}
	if cfg.Eps == 0 {
		cfg.Eps = 0.5
	}
	if cfg.Backend == "" {
		cfg.Backend = DefaultBackend
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	return cfg
}

// DefaultMaxInflight is the admission quota when Config.MaxInflight is
// zero: far above any healthy pipeline depth (shards × queue), low enough
// to stop a runaway client from holding the reorder buffer hostage.
const DefaultMaxInflight = 4096

// submission is one received batch entering the pipeline, or — when flush
// is non-nil — a barrier marker: the applier answers it with the committed
// sequence only after everything submitted before it has been applied.
type submission struct {
	batch wire.Batch
	enq   int64       // receive timestamp (server clock)
	flush chan uint64 // non-nil: barrier marker (buffered, cap 1)
}

// ctrl announces one routed batch to the applier: how many shard parts to
// collect and how many updates they carry in total. A ctrl with flush set
// is a barrier marker passed through from the dispatcher.
type ctrl struct {
	seq   uint64
	parts int
	count int
	enq   int64
	flush chan uint64
}

// shardUpdate is one update tagged with its index in the original batch,
// so the applier can restore client order after the shard fan-out.
type shardUpdate struct {
	idx    int32
	insert bool
	u, v   int32
}

// part is the slice of a batch owned by one shard.
type part struct {
	seq     uint64
	shard   int
	ups     []shardUpdate
	invalid int // updates that failed shard-side validation
}

// Server is a running matchd instance.
type Server struct {
	cfg     Config
	backend Backend
	clock   func() int64
	stats   *serverStats
	inj     *faults.Injector
	store   *Store // nil when CheckpointDir is unset

	mu      sync.Mutex // guards matcher state and checkpoint capture
	matcher Matcher    //sparse:guardedby mu
	ckptMu  sync.Mutex // serializes durable checkpoint writes

	applied  atomic.Uint64 // highest committed batch sequence
	crashed  atomic.Bool
	stopping atomic.Bool

	subCh   chan submission
	ctrlCh  chan ctrl
	shardCh []chan part
	partsCh chan part

	connMu    sync.Mutex
	conns     map[net.Conn]struct{} //sparse:guardedby connMu
	listeners []net.Listener        //sparse:guardedby connMu
	connWG    sync.WaitGroup
	shardWG   sync.WaitGroup

	shutdownOnce sync.Once
	done         chan struct{} // closed when the applier drains

	lastCkptErr atomic.Pointer[error]
}

// New creates a server over an empty graph and starts its pipeline.
// Callers must Shutdown the server to release its goroutines.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	b, err := BackendByName(cfg.Backend)
	if err != nil {
		return nil, err
	}
	matcher, err := b.New(cfg.N, cfg.Beta, cfg.Eps, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return start(cfg, b, matcher, 0)
}

// NewFromCheckpoint rebuilds a server from a durable checkpoint: the
// matcher state, construction parameters, and applied sequence number all
// come from the checkpoint, so clients that replay from Welcome.Applied+1
// continue the update sequence bit-identically. Pipeline knobs (shards,
// queue depth, checkpoint cadence, fault plan, clock) come from cfg.
func NewFromCheckpoint(cfg Config, c *Checkpoint) (*Server, error) {
	cfg.N, cfg.Beta, cfg.Eps, cfg.Seed, cfg.Backend = c.N, c.Beta, c.Eps, c.Seed, c.Backend
	cfg = cfg.withDefaults()
	b, err := BackendByName(c.Backend)
	if err != nil {
		return nil, err
	}
	matcher, err := b.Restore(c.Payload)
	if err != nil {
		return nil, err
	}
	if matcher.N() != c.N {
		return nil, &CheckpointError{Why: fmt.Sprintf("payload is for %d vertices, header says %d", matcher.N(), c.N)}
	}
	return start(cfg, b, matcher, c.Applied)
}

func start(cfg Config, b Backend, matcher Matcher, applied uint64) (*Server, error) {
	if cfg.Shards < 1 || cfg.Shards > maxShards {
		return nil, fmt.Errorf("serve: shard count %d outside [1,%d]", cfg.Shards, maxShards)
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("serve: queue depth %d, want >= 1", cfg.QueueDepth)
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("serve: negative checkpoint cadence %d", cfg.CheckpointEvery)
	}
	clock := cfg.NowNanos
	if clock == nil {
		var tick atomic.Int64
		clock = func() int64 { return tick.Add(1) }
	}
	s := &Server{
		cfg:     cfg,
		backend: b,
		clock:   clock,
		stats:   newServerStats(cfg.Shards, clock()),
		matcher: matcher,
		subCh:   make(chan submission, 16),
		ctrlCh:  make(chan ctrl, 1024),
		shardCh: make([]chan part, cfg.Shards),
		partsCh: make(chan part, 4*cfg.Shards),
		conns:   make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	s.applied.Store(applied)
	s.stats.lastCheckpointed.Store(applied)
	if cfg.CheckpointDir != "" {
		store, err := OpenStore(cfg.FS, cfg.CheckpointDir, cfg.CheckpointKeep)
		if err != nil {
			return nil, err
		}
		s.store = store
	}
	if cfg.Plan != nil && !cfg.Plan.Zero() {
		if err := cfg.Plan.Validate(); err != nil {
			return nil, err
		}
		s.inj = cfg.Plan.Injector()
	}
	for i := range s.shardCh {
		s.shardCh[i] = make(chan part, cfg.QueueDepth)
	}
	s.shardWG.Add(cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		go s.shardWorker(i)
	}
	go s.dispatcher()
	go s.applier()
	return s, nil
}

// Applied returns the highest committed batch sequence number.
func (s *Server) Applied() uint64 { return s.applied.Load() }

// Crashed reports whether the fault plan has crash-stopped the server.
func (s *Server) Crashed() bool { return s.crashed.Load() }

// N returns the vertex count.
func (s *Server) N() int { return s.cfg.N }

// Shards returns the ingest shard count.
func (s *Server) Shards() int { return s.cfg.Shards }

// BackendName returns the active backend's name.
func (s *Server) BackendName() string { return s.backend.Name }

// MatchingSnapshot returns a copy of the current matching's mate array and
// its size, captured atomically between batch commits.
func (s *Server) MatchingSnapshot() ([]int32, int) {
	s.mu.Lock()
	m := s.matcher.Matching()
	mates := append([]int32(nil), m.Mates()...)
	size := m.Size()
	s.mu.Unlock()
	return mates, size
}

// StatsPairs snapshots the operational counters in wire order.
func (s *Server) StatsPairs() []wire.StatPair {
	s.mu.Lock()
	size := s.matcher.Matching().Size()
	s.mu.Unlock()
	return s.stats.pairs(s.Applied(), size, s.clock())
}

// CheckpointNow captures a checkpoint consistent with the committed
// prefix and, if a checkpoint directory is configured, durably writes it
// as the next generation. It returns the checkpoint and the number of
// bytes written (0 when no directory is configured). A failed write
// counts in checkpoint_write_errors; the previous generation survives it.
func (s *Server) CheckpointNow() (*Checkpoint, int, error) {
	s.mu.Lock()
	payload, err := s.matcher.MarshalCheckpoint()
	applied := s.applied.Load()
	s.mu.Unlock()
	if err != nil {
		return nil, 0, fmt.Errorf("serve: backend checkpoint: %w", err)
	}
	c := &Checkpoint{
		Applied: applied,
		N:       s.cfg.N,
		Beta:    s.cfg.Beta,
		Eps:     s.cfg.Eps,
		Seed:    s.cfg.Seed,
		Backend: s.backend.Name,
		Payload: payload,
	}
	nbytes := 0
	if s.store != nil {
		s.ckptMu.Lock()
		gen, _, n, err := s.store.Write(c)
		s.ckptMu.Unlock()
		if err != nil {
			s.stats.checkpointErrors.Add(1)
			return nil, 0, err
		}
		nbytes = n
		s.stats.checkpointGen.Store(gen)
	}
	s.stats.checkpoints.Add(1)
	s.stats.lastCheckpointed.Store(applied)
	return c, nbytes, nil
}

// LastCheckpointError returns the most recent automatic-checkpoint
// failure, or nil. Automatic checkpoints never halt the apply loop.
func (s *Server) LastCheckpointError() error {
	if p := s.lastCkptErr.Load(); p != nil {
		return *p
	}
	return nil
}

// shardOf maps an edge to its owning shard: the shard of the smaller
// endpoint. Both endpoints of an update hash identically regardless of
// orientation, so ownership is well-defined.
func (s *Server) shardOf(u, v int32) int {
	lo := u
	if v < lo {
		lo = v
	}
	return int(lo) % s.cfg.Shards
}

// validateUpdate is the admission check run on the connection goroutine,
// giving clients a synchronous typed rejection before a bad batch enters
// the pipeline.
func (s *Server) validateUpdate(up wire.Update) error {
	if up.U < 0 || int(up.U) >= s.cfg.N || up.V < 0 || int(up.V) >= s.cfg.N {
		return fmt.Errorf("endpoint outside [0,%d): {%d,%d}", s.cfg.N, up.U, up.V)
	}
	if up.U == up.V {
		return fmt.Errorf("self-loop at %d", up.U)
	}
	return nil
}

// batchBits approximates the wire size of a batch for fault accounting
// without re-encoding it.
func batchBits(b wire.Batch) int { return 8 * (8 + 8 + 4 + 9*len(b.Updates)) }

// dispatcher is the single goroutine that owns sequence-number state: it
// deduplicates, reorders, applies the fault plan in deterministic arrival
// order, and fans each released batch out to shard queues.
func (s *Server) dispatcher() {
	var (
		arrivals int                           // arrival clock: one tick per received batch
		next     = s.applied.Load() + 1        // next sequence to release
		held     = make(map[uint64]wire.Batch) // future sequences awaiting their gap
		delayed  []delayedBatch                // fault-delayed batches
	)
	release := func(b wire.Batch, enq int64) {
		if b.Seq < next {
			s.stats.batchesDuplicate.Add(1)
			return
		}
		if _, dup := held[b.Seq]; dup {
			s.stats.batchesDuplicate.Add(1)
			return
		}
		held[b.Seq] = b
		for {
			nb, ok := held[next]
			if !ok {
				return
			}
			delete(held, next)
			s.route(nb, enq)
			next++
		}
	}
	deliver := func(b wire.Batch, enq int64) {
		if s.inj == nil {
			release(b, enq)
			return
		}
		if s.inj.Down(arrivals, serverNode) {
			s.crashed.Store(true)
			return
		}
		fate := s.inj.Fate(arrivals, 1, serverNode, batchBits(b))
		if fate.Drop {
			s.stats.faultsDropped.Add(1)
			return
		}
		if fate.Delay > 0 {
			s.stats.faultsDelayed.Add(1)
			delayed = append(delayed, delayedBatch{due: arrivals + fate.Delay, batch: b, enq: enq})
		} else {
			release(b, enq)
		}
		for i := 0; i < fate.Dup; i++ {
			s.stats.faultsDuped.Add(1)
			release(b, enq)
		}
	}
	flushDelayed := func(now int) {
		kept := delayed[:0]
		for _, d := range delayed {
			if d.due <= now {
				release(d.batch, d.enq)
			} else {
				kept = append(kept, d)
			}
		}
		delayed = kept
	}
	for sub := range s.subCh {
		if sub.flush != nil {
			// Barrier marker: forward it to the applier behind every batch
			// routed so far, so the reply proves the committed prefix. It
			// does not tick the arrival clock — fault fates stay keyed to
			// batch arrivals only, independent of client flush timing.
			if s.crashed.Load() {
				sub.flush <- s.applied.Load() // answer directly; pipeline is dead
				continue
			}
			s.ctrlCh <- ctrl{flush: sub.flush}
			continue
		}
		if s.crashed.Load() {
			continue // a crashed server loses in-flight traffic
		}
		arrivals++
		flushDelayed(arrivals)
		deliver(sub.batch, sub.enq)
	}
	// Drain: shutdown releases everything still fault-delayed, in order.
	if !s.crashed.Load() {
		flushDelayed(int(^uint(0) >> 1))
	}
	for i := range s.shardCh {
		close(s.shardCh[i])
	}
	s.shardWG.Wait()
	close(s.ctrlCh)
}

type delayedBatch struct {
	due   int
	batch wire.Batch
	enq   int64
}

// route splits one released batch into shard parts and hands them to the
// shard queues, announcing the batch to the applier first so parts are
// never orphaned.
func (s *Server) route(b wire.Batch, enq int64) {
	parts := make(map[int][]shardUpdate, s.cfg.Shards)
	for i, up := range b.Updates {
		sh := s.shardOf(up.U, up.V)
		parts[sh] = append(parts[sh], shardUpdate{idx: int32(i), insert: up.Insert, u: up.U, v: up.V})
	}
	s.ctrlCh <- ctrl{seq: b.Seq, parts: len(parts), count: len(b.Updates), enq: enq}
	// Shards are drained in index order; iterating them in index order
	// (not map order) keeps queue telemetry deterministic.
	for sh := 0; sh < s.cfg.Shards; sh++ {
		ups, ok := parts[sh]
		if !ok {
			continue
		}
		s.stats.observeQueueDepth(sh, len(s.shardCh[sh])+1)
		s.shardCh[sh] <- part{seq: b.Seq, shard: sh, ups: ups}
	}
}

// shardWorker validates its slice of each batch concurrently with the
// other shards and forwards it to the applier. This is the pipelined
// stage: shard k can be validating batch 12 while the applier commits
// batch 11 and the dispatcher routes batch 13.
func (s *Server) shardWorker(id int) {
	defer s.shardWG.Done()
	for p := range s.shardCh[id] {
		for _, su := range p.ups {
			if su.u < 0 || int(su.u) >= s.cfg.N || su.v < 0 || int(su.v) >= s.cfg.N || su.u == su.v || s.shardOf(su.u, su.v) != id {
				p.invalid++
			}
		}
		s.partsCh <- p
	}
}

// applier is the single committer: it reassembles each batch's shard
// parts in the client's original update order and applies them to the
// authoritative matcher in global sequence order.
func (s *Server) applier() {
	defer close(s.done)
	pending := make(map[uint64][]part)
	scratch := make([]shardUpdate, 0, 1024)
	sinceCkpt := 0
	for c := range s.ctrlCh {
		if c.flush != nil {
			// Barrier reached the committer: every batch routed before it
			// has been applied. The channel is buffered, so a vanished
			// waiter cannot block the apply loop.
			c.flush <- s.applied.Load()
			continue
		}
		parts := pending[c.seq]
		delete(pending, c.seq)
		for len(parts) < c.parts {
			p := <-s.partsCh
			if p.seq == c.seq {
				parts = append(parts, p)
			} else {
				pending[p.seq] = append(pending[p.seq], p)
			}
		}
		invalid := 0
		if cap(scratch) < c.count {
			scratch = make([]shardUpdate, c.count)
		}
		scratch = scratch[:c.count]
		for _, p := range parts {
			invalid += p.invalid
			for _, su := range p.ups {
				scratch[su.idx] = su
			}
		}
		if invalid > 0 {
			// Defense in depth: the conn admission check should have
			// rejected this batch. Skip it wholesale but still advance the
			// sequence — a permanently unappliable batch must not wedge
			// the stream.
			s.stats.batchesInvalid.Add(1)
			s.mu.Lock()
			s.applied.Store(c.seq)
			s.mu.Unlock()
			continue
		}
		s.mu.Lock()
		ins, del := 0, 0
		for _, su := range scratch {
			if su.insert {
				if s.matcher.Insert(su.u, su.v) {
					ins++
				}
			} else {
				if s.matcher.Delete(su.u, su.v) {
					del++
				}
			}
		}
		s.applied.Store(c.seq)
		s.mu.Unlock()
		s.stats.batchesApplied.Add(1)
		s.stats.updatesApplied.Add(int64(c.count))
		s.stats.insertsApplied.Add(int64(ins))
		s.stats.deletesApplied.Add(int64(del))
		s.stats.latency.record(s.clock() - c.enq)
		sinceCkpt++
		if s.cfg.CheckpointEvery > 0 && sinceCkpt >= s.cfg.CheckpointEvery {
			sinceCkpt = 0
			if _, _, err := s.CheckpointNow(); err != nil {
				s.lastCkptErr.Store(&err)
			}
		}
	}
}

// Shutdown stops the server: it closes listeners and connections, drains
// the pipeline (releasing fault-delayed batches), and waits for the
// applier to commit everything in flight. Idempotent and safe to call
// concurrently.
func (s *Server) Shutdown() {
	s.shutdownOnce.Do(func() {
		s.stopping.Store(true)
		s.connMu.Lock()
		for _, l := range s.listeners {
			l.Close()
		}
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		s.connWG.Wait()
		close(s.subCh)
		<-s.done
	})
}
