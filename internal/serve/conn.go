package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/serve/wire"
)

// Serve accepts connections on l until the listener is closed (by
// Shutdown or externally). It returns nil on a clean shutdown.
func (s *Server) Serve(l net.Listener) error {
	s.connMu.Lock()
	if s.stopping.Load() {
		s.connMu.Unlock()
		l.Close()
		return errors.New("serve: server is shut down")
	}
	s.listeners = append(s.listeners, l)
	s.connMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.stopping.Load() {
				return nil
			}
			return fmt.Errorf("serve: accept: %w", err)
		}
		go s.ServeConn(conn)
	}
}

// ServeConn runs the wire protocol on one connection until the peer
// disconnects, sends Quit, stalls past the configured I/O deadline, or
// the server shuts down. It may be called directly with an in-process
// pipe end — that is how the conformance tests drive a server without
// sockets.
//
// With Config.IOTimeoutNanos set, every frame read and every reply write
// runs under a deadline computed from the injected clock. A conn that
// goes silent (no frames) or stops draining replies (write blocks) is
// evicted — counted in conns_evicted — so one stalled peer can never pin
// a server goroutine or, transitively, the dispatcher.
func (s *Server) ServeConn(conn net.Conn) {
	s.connMu.Lock()
	if s.stopping.Load() {
		s.connMu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.connWG.Add(1)
	s.connMu.Unlock()
	s.stats.connsOpened.Add(1)
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		s.connWG.Done()
		conn.Close()
	}()

	evictOnTimeout := func(err error) {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			s.stats.connsEvicted.Add(1)
		}
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	var replyErr error
	reply := func(m wire.Msg) bool {
		replyErr = wire.WriteFrame(bw, m)
		return replyErr == nil
	}
	for {
		if s.cfg.IOTimeoutNanos > 0 {
			conn.SetReadDeadline(time.Unix(0, s.clock()+s.cfg.IOTimeoutNanos))
		}
		m, err := wire.ReadFrame(br)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				// Idle or stalled peer: evict silently — there is no point
				// writing a diagnostic to a conn that is not being read.
				s.stats.connsEvicted.Add(1)
				return
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !s.stopping.Load() {
				// Protocol damage: report once, then drop the conn — after
				// a framing error the stream cannot be resynchronized.
				wire.WriteFrame(bw, wire.ErrorResp{Code: wire.CodeInvalidUpdate, Msg: err.Error()})
				bw.Flush()
			}
			return
		}
		if s.cfg.IOTimeoutNanos > 0 {
			// Arm the write deadline before building the reply: large
			// replies spill through the bufio writer mid-encode, and those
			// spills must run under the deadline too.
			conn.SetWriteDeadline(time.Unix(0, s.clock()+s.cfg.IOTimeoutNanos))
		}
		ok := true
		switch m := m.(type) {
		case wire.Hello:
			ok = reply(wire.Welcome{
				Applied: s.Applied(),
				N:       uint32(s.cfg.N),
				Shards:  uint32(s.cfg.Shards),
				Backend: s.backend.Name,
			})
		case wire.Batch:
			ok = reply(s.handleBatch(m))
		case wire.FlushReq:
			if s.crashed.Load() {
				ok = reply(wire.ErrorResp{Code: wire.CodeCrashed, Msg: "server crash-stopped by fault plan"})
				break
			}
			// Flush is a barrier, not a read: the marker rides the pipeline
			// behind every batch submitted before it, so the reply proves
			// the committed prefix. (The subCh send is safe while this
			// connection is registered — Shutdown closes subCh only after
			// connWG drains.)
			barrier := make(chan uint64, 1)
			s.subCh <- submission{flush: barrier}
			ok = reply(wire.FlushResp{Applied: <-barrier})
		case wire.StatsReq:
			ok = reply(wire.StatsResp{Pairs: s.StatsPairs()})
		case wire.MatchReq:
			mates, size := s.MatchingSnapshot()
			ok = reply(wire.MatchResp{Size: int32(size), Mates: mates})
		case wire.CheckpointReq:
			c, nbytes, err := s.CheckpointNow()
			if err != nil {
				ok = reply(wire.ErrorResp{Code: wire.CodeInternal, Msg: err.Error()})
			} else {
				ok = reply(wire.CheckpointResp{Seq: c.Applied, Bytes: uint32(nbytes)})
			}
		case wire.Quit:
			reply(wire.FlushResp{Applied: s.Applied()})
			bw.Flush()
			go s.Shutdown()
			return
		default:
			ok = reply(wire.ErrorResp{Code: wire.CodeInternal, Msg: fmt.Sprintf("unexpected frame %T", m)})
		}
		if !ok {
			evictOnTimeout(replyErr)
			return
		}
		if err := bw.Flush(); err != nil {
			// A slow client that stopped draining replies: evict rather
			// than block this goroutine (and its backpressure chain).
			evictOnTimeout(err)
			return
		}
	}
}

// handleBatch admission-checks one batch and submits it to the pipeline.
// The Ack acknowledges receipt and reports committed progress; it does
// not promise the batch itself has been applied yet.
func (s *Server) handleBatch(b wire.Batch) wire.Msg {
	if s.crashed.Load() {
		return wire.ErrorResp{Code: wire.CodeCrashed, Msg: "server crash-stopped by fault plan"}
	}
	if s.stopping.Load() {
		return wire.ErrorResp{Code: wire.CodeShuttingDown, Msg: "server is shutting down"}
	}
	if b.Seq == 0 {
		s.stats.batchesInvalid.Add(1)
		return wire.ErrorResp{Code: wire.CodeInvalidUpdate, Msg: "batch sequence numbers start at 1"}
	}
	if q := s.cfg.MaxInflight; q > 0 {
		if applied := s.applied.Load(); b.Seq > applied+uint64(q) {
			// Admission quota: the reorder buffer must stay bounded even
			// against a client that floods far ahead of the committed
			// prefix. Shed, don't queue — the client backs off and resends.
			s.stats.loadshedBatches.Add(1)
			return wire.ErrorResp{Code: wire.CodeOverloaded,
				Msg: fmt.Sprintf("sequence %d exceeds admission quota (applied %d + %d)", b.Seq, applied, q)}
		}
	}
	for i, up := range b.Updates {
		if err := s.validateUpdate(up); err != nil {
			s.stats.batchesInvalid.Add(1)
			return wire.ErrorResp{Code: wire.CodeInvalidUpdate, Msg: fmt.Sprintf("update %d: %v", i, err)}
		}
	}
	s.stats.batchesReceived.Add(1)
	s.subCh <- submission{batch: b, enq: s.clock()}
	return wire.Ack{Seq: b.Seq, Applied: s.Applied()}
}
