package serve_test

import (
	"errors"
	"path/filepath"
	"slices"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/serve"
)

// TestCrashRestartRecovery is the crash drill end to end: a fault plan
// crash-stops the server mid-stream, the operator restarts it from the
// last durable checkpoint, the client reconnects and replays from the
// acknowledged sequence — and the final matching is bit-identical to a
// run that never crashed.
func TestCrashRestartRecovery(t *testing.T) {
	const n = 200
	updates, ups := testTrace(t, n, 10, 1200, 17)
	for _, backend := range serve.BackendNames() {
		t.Run(backend, func(t *testing.T) {
			want := directReplay(t, backend, n, updates)
			ckptDir := filepath.Join(t.TempDir(), "ckpts")

			// Phase 1: serve with a crash-stop scheduled at the 40th batch
			// arrival, checkpointing every 8 applied batches.
			crashed, addr := startServer(t, serve.Config{
				N: n, Shards: 4, Beta: testBeta, Eps: testEps, Seed: testSeed,
				Backend:         backend,
				CheckpointEvery: 8,
				CheckpointDir:   ckptDir,
				Plan:            &faults.Plan{Crashes: []faults.Crash{{Node: 0, Round: 40}}},
			})
			c := dial(t, addr)
			err := c.SendUpdates(ups, 31)
			if err == nil {
				t.Fatal("SendUpdates succeeded through a scheduled crash-stop")
			}
			var se *serve.ServerError
			if !errors.As(err, &se) || !se.Crashed() {
				t.Fatalf("crash surfaced as %v, want a Crashed ServerError", err)
			}
			if !crashed.Crashed() {
				t.Fatal("server does not report itself crashed")
			}
			crashed.Shutdown()

			// Phase 2: operator restart from the newest durable generation.
			ck, report, err := serve.RestoreLatest(nil, ckptDir)
			if err != nil {
				t.Fatal(err)
			}
			if len(report.Skipped) != 0 {
				t.Fatalf("clean crash-stop left corrupt generations: %v", report.Skipped)
			}
			if ck.Applied == 0 {
				t.Fatal("no progress was checkpointed before the crash")
			}
			restored, err := serve.NewFromCheckpoint(serve.Config{Shards: 4}, ck)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(restored.Shutdown)
			if restored.Applied() != ck.Applied || restored.BackendName() != backend {
				t.Fatalf("restored applied=%d backend=%s, checkpoint had %d/%s",
					restored.Applied(), restored.BackendName(), ck.Applied, backend)
			}
			addr2 := listen(t, restored)

			// Phase 3: the client reconnects and replays; SendUpdates skips
			// everything the Welcome reports as already committed.
			c2 := dial(t, addr2)
			if got := c2.Welcome().Applied; got != ck.Applied {
				t.Fatalf("welcome applied %d, checkpoint %d", got, ck.Applied)
			}
			if err := c2.SendUpdates(ups, 31); err != nil {
				t.Fatal(err)
			}
			mates, size, err := c2.Matching()
			if err != nil {
				t.Fatal(err)
			}
			if size != want.Matching().Size() || !slices.Equal(mates, want.Matching().Mates()) {
				t.Fatalf("post-restart matching diverged from the never-crashed replay")
			}
		})
	}
}

// TestFaultyDeliveryConverges injects drop, duplication, and delay on the
// ingest path. Exactly-once sequencing must absorb all of it: the client's
// retransmission loop eventually commits every batch, and the final state
// is bit-identical to a fault-free replay — not merely equivalent.
func TestFaultyDeliveryConverges(t *testing.T) {
	const n = 180
	updates, ups := testTrace(t, n, 10, 1000, 23)
	want := directReplay(t, serve.DefaultBackend, n, updates)
	plans := []faults.Plan{
		{Seed: 5, DropRate: 0.2},
		{Seed: 6, DupRate: 0.3},
		{Seed: 7, DelayRate: 0.3, MaxDelay: 9},
		{Seed: 8, DropRate: 0.15, DupRate: 0.15, DelayRate: 0.15, MaxDelay: 5},
	}
	for _, plan := range plans {
		plan := plan
		s, addr := startServer(t, serve.Config{
			N: n, Shards: 2, Beta: testBeta, Eps: testEps, Seed: testSeed,
			Plan: &plan,
		})
		c := dial(t, addr)
		if err := c.SendUpdates(ups, 29); err != nil {
			t.Fatalf("plan %+v: %v", plan, err)
		}
		mates, _, err := c.Matching()
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(mates, want.Matching().Mates()) {
			t.Fatalf("plan %+v: faulty delivery changed the final matching", plan)
		}
		// The injector must actually have fired — otherwise this test
		// proves nothing.
		pairs, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		faulted := int64(0)
		for _, p := range pairs {
			switch p.Name {
			case "faults_dropped", "faults_duplicated", "faults_delayed":
				faulted += p.Value
			}
		}
		if faulted == 0 {
			t.Fatalf("plan %+v: injector never fired", plan)
		}
		s.Shutdown()
	}
}

// TestConcurrentClientsSoak exercises the sharded queues, the stats block,
// and the matcher mutex under concurrency: one writer streams updates
// while reader connections hammer stats/matching/flush. Run under -race
// in CI; -short keeps the workload proportionate for the plain test job.
func TestConcurrentClientsSoak(t *testing.T) {
	const n = 150
	churn := 2500
	if testing.Short() {
		churn = 600
	}
	updates, ups := testTrace(t, n, 8, churn, 37)
	_, addr := startServer(t, serve.Config{
		N: n, Shards: 4, Beta: testBeta, Eps: testEps, Seed: testSeed,
		QueueDepth: 8, // small queues so backpressure actually engages
	})

	writerDone := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rc, err := serve.Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer rc.Close()
			for {
				select {
				case <-writerDone:
					return
				default:
				}
				if _, err := rc.Stats(); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := rc.Matching(); err != nil {
					t.Error(err)
					return
				}
				if _, err := rc.Flush(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	c := dial(t, addr)
	if err := c.SendUpdates(ups, 23); err != nil {
		t.Fatal(err)
	}
	close(writerDone)
	wg.Wait()

	want := directReplay(t, serve.DefaultBackend, n, updates)
	mates, _, err := c.Matching()
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(mates, want.Matching().Mates()) {
		t.Fatal("soak run diverged from the direct replay")
	}
}
